// Package server is the concurrent query-serving layer over era indexes:
// a thread-safe multi-index Engine answering the classic suffix tree
// queries, an LRU result cache, and a JSON-over-HTTP front end (http.go).
//
// The ERA paper builds suffix trees because of the O(|P|) queries they
// enable (§1); this package is where those queries meet traffic. The hot
// read path takes no lock at all: the index catalog is an immutable map
// swapped atomically by writers (copy-on-write), and an Index itself is
// immutable once built, so any number of goroutines descend the trees in
// parallel. Only the result cache — which must mutate recency state on a
// hit — takes a (sharded) mutex.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"era"
	"era/internal/alphabet"
)

// ErrUnknownIndex reports a query addressed to an index name that is not
// loaded. The HTTP layer maps it — and only it — to 404; any other engine
// error is a server-side problem and surfaces as 500.
var ErrUnknownIndex = errors.New("unknown index")

// ErrBadPattern reports a pattern BatchChecked rejected against the target
// index's alphabet. The HTTP layer maps it to 400.
var ErrBadPattern = errors.New("invalid pattern")

// ErrNotMutable reports a mutation addressed to a static (snapshot) index.
// Only live indexes (era.LiveIndex, or anything else implementing Mutable)
// accept appends and deletes. The HTTP layer maps it to 400.
var ErrNotMutable = errors.New("index is not mutable")

// ErrBadDocument reports an appended document the engine rejected (it
// contains the reserved terminator byte). The HTTP layer maps it to 400.
var ErrBadDocument = errors.New("invalid document")

// ErrSaturated reports an append rejected because the target index already
// has MaxInflightAppends appends in flight. The HTTP layer maps it to 503
// with a Retry-After header; the rejection count is in Stats.
var ErrSaturated = errors.New("too many appends in flight")

// ErrCorruptIndex reports an index whose stored checksums failed
// verification when a request touched it; the engine quarantines the index
// (unloads it and renames its file *.quarantine) and keeps serving the rest
// of the catalog.
var ErrCorruptIndex = errors.New("index failed checksum verification")

// DefaultMaxInflightAppends is the per-index append concurrency bound.
// Appends serialize on the live index's internal mutex anyway; the bound
// caps how deep that queue gets before clients are told to back off.
const DefaultMaxInflightAppends = 8

// Mutable is the mutation surface a live index exposes through the engine:
// era.Queryable plus append/delete and a mutation epoch for cache keying.
// *era.LiveIndex implements it.
type Mutable interface {
	era.Queryable
	Append(docs [][]byte) ([]uint64, error)
	Delete(id uint64) (bool, error)
	Epoch() uint64
}

// Engine serves queries against a set of named indexes. Construct with
// NewEngine; all methods are safe for concurrent use.
type Engine struct {
	// catalog is copy-on-write: readers load the current map and never
	// block; writers clone it under mu and swap the pointer.
	catalog atomic.Pointer[map[string]*catalogEntry]
	mu      sync.Mutex // serializes catalog writers (Load/Unload/Close)

	cache *queryCache

	// MaxInflightAppends bounds concurrent appends per live index; at the
	// bound AppendDocs rejects with ErrSaturated. Set it before the first
	// Load; zero means DefaultMaxInflightAppends.
	MaxInflightAppends int

	queries       atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	appendRejects atomic.Int64
	nextEpoch     atomic.Uint64

	// quarantined lists files (base names) moved aside for failing checksum
	// or validation, at LoadDir or lazily when a request touched a corrupt
	// index. Guarded by mu.
	quarantined []string

	// retired tracks *mapped* entries replaced by a hot reload or Unload
	// that have not yet drained. Each catalog entry is reference-counted
	// (the catalog holds one reference, every in-flight query one more), so
	// a retired mapping is unmapped the moment its last racing query
	// returns — a reload or compaction loop's mapped memory stays bounded
	// instead of growing until Close. This list exists only for accounting
	// (MappedBytes) and as the Close backstop; drained entries are pruned
	// from it on the next retirement. Heap indexes are not tracked: their
	// memory is ordinary garbage once the last reference drops.
	retired []*catalogEntry
	closed  bool

	// notReady is set by SetReady(false) — the serve command flips it at
	// the start of a graceful drain so load balancers and the cluster
	// router's health checker stop sending new work before the listener
	// closes. Engines start ready.
	notReady atomic.Bool
}

// catalogEntry pairs an index — monolithic, sharded, or live, anything
// behind era.Queryable — with its load epoch and lifecycle state. The epoch
// is part of every cache key, so reloading a corpus under the same name
// orphans the stale cached results instead of serving them; a sharded index
// reloads (and purges) as one unit.
type catalogEntry struct {
	idx   era.Queryable
	epoch uint64
	// path is the backing file the index was loaded from ("" for indexes
	// handed to Load directly); the quarantine path renames it aside.
	path string
	// mapped caches idx.MappedBytes() at load: the accounting in
	// Engine.MappedBytes must not touch the index after a racing drain
	// closed its mapping.
	mapped int64
	// appendSem bounds in-flight appends (mutable indexes only; nil
	// otherwise). AppendDocs try-acquires: full means ErrSaturated.
	appendSem chan struct{}

	// refs counts the catalog's own reference plus every in-flight query.
	// Zero is terminal: the drop to zero closes the index, and acquire
	// refuses to resurrect the entry afterwards.
	refs atomic.Int64
	// retired is set (before the epoch's cache entries are purged) when the
	// entry leaves the catalog; batchEntry re-checks it after caching so a
	// put racing the purge cannot strand results under a dead epoch.
	retired atomic.Bool
	// closed is set once the deferred Close has run; closeErr (written
	// first) carries its error for Engine.Close to report.
	closed   atomic.Bool
	closeErr error
}

func newCatalogEntry(idx era.Queryable, epoch uint64) *catalogEntry {
	ent := &catalogEntry{idx: idx, epoch: epoch, mapped: idx.MappedBytes()}
	ent.refs.Store(1) // the catalog's reference
	return ent
}

// acquire takes an in-flight reference, failing once the entry drained.
func (ent *catalogEntry) acquire() bool {
	for {
		r := ent.refs.Load()
		if r <= 0 {
			return false
		}
		if ent.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one reference; the holder of the last one closes the index
// (for a mapped index, that is the munmap). Exactly one goroutine observes
// the drop to zero.
func (ent *catalogEntry) release() {
	if ent.refs.Add(-1) == 0 {
		ent.closeErr = ent.idx.Close()
		ent.closed.Store(true)
	}
}

// NewEngine returns an engine whose result cache holds up to cacheSize
// query results (0 disables caching).
func NewEngine(cacheSize int) *Engine {
	e := &Engine{cache: newQueryCache(cacheSize)}
	e.catalog.Store(&map[string]*catalogEntry{})
	return e
}

// Load registers idx under its name, replacing any index already loaded
// under it (hot reload). The index must be named (era.Index.SetName, or
// loaded through era.OpenIndex which names unnamed files).
func (e *Engine) Load(idx era.Queryable) error { return e.loadPath(idx, "") }

func (e *Engine) loadPath(idx era.Queryable, path string) error {
	name := idx.Name()
	if name == "" {
		return fmt.Errorf("server: index has no name; call SetName before Load")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("server: engine is closed")
	}
	old := *e.catalog.Load()
	next := make(map[string]*catalogEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	replaced := old[name]
	ent := newCatalogEntry(idx, e.nextEpoch.Add(1))
	ent.path = path
	if _, mutable := idx.(Mutable); mutable {
		n := e.MaxInflightAppends
		if n <= 0 {
			n = DefaultMaxInflightAppends
		}
		ent.appendSem = make(chan struct{}, n)
	}
	next[name] = ent
	e.catalog.Store(&next)
	if replaced != nil {
		if replaced.idx == idx {
			// The same object reloaded under a fresh epoch: purge the old
			// epoch's cache but leave the reference unreleased — draining
			// the old entry would close the index the new entry serves.
			replaced.retired.Store(true)
			e.cache.purgePrefix(epochPrefix(replaced.epoch))
		} else {
			e.retireEntryLocked(replaced)
		}
	}
	return nil
}

// retireEntryLocked takes an entry out of service after the catalog swap
// removed it: flags it retired, purges its cached results (in that order —
// the flag is what lets batchEntry detect a put racing this purge), records
// it for mapped-bytes accounting, and drops the catalog reference. Caller
// holds e.mu, and the catalog no longer references the entry.
func (e *Engine) retireEntryLocked(ent *catalogEntry) {
	ent.retired.Store(true)
	e.cache.purgePrefix(epochPrefix(ent.epoch))
	if ent.mapped > 0 {
		e.pruneRetiredLocked()
		e.retired = append(e.retired, ent)
	}
	ent.release()
}

// pruneRetiredLocked drops drained entries from the retired list so it
// cannot grow without bound across a long reload loop. Caller holds e.mu.
func (e *Engine) pruneRetiredLocked() {
	k := 0
	for _, ent := range e.retired {
		if !ent.closed.Load() {
			e.retired[k] = ent
			k++
		}
	}
	clear(e.retired[k:])
	e.retired = e.retired[:k]
}

// LoadFile opens the index file at path and registers it.
func (e *Engine) LoadFile(path string) (string, error) {
	idx, err := era.OpenIndex(path)
	if err != nil {
		return "", err
	}
	return idx.Name(), e.loadPath(idx, path)
}

// LoadDir registers every *.idx file in dir and returns the names loaded.
// A file that fails to load (corrupt, truncated, unreadable) no longer
// aborts the directory: the rest load, and the per-file failures come back
// joined into one error alongside the loaded names — so a startup can both
// serve the healthy catalog and report exactly which files need attention.
// A file whose content is damaged (as opposed to being unreadable at the
// filesystem level) is additionally quarantined: renamed *.quarantine so
// the next startup does not trip over it again, and listed in Stats.
func (e *Engine) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	var errs []error
	matched := false
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".idx") {
			continue
		}
		matched = true
		path := filepath.Join(dir, ent.Name())
		name, err := e.LoadFile(path)
		if err != nil {
			if !os.IsNotExist(err) && !os.IsPermission(err) {
				if rerr := os.Rename(path, path+".quarantine"); rerr == nil {
					e.noteQuarantine(ent.Name())
					err = fmt.Errorf("%w (quarantined as %s)", err, ent.Name()+".quarantine")
				}
			}
			errs = append(errs, fmt.Errorf("server: loading %s: %w", ent.Name(), err))
			continue
		}
		names = append(names, name)
	}
	if !matched {
		return nil, fmt.Errorf("server: no *.idx files in %s", dir)
	}
	return names, errors.Join(errs...)
}

// noteQuarantine records a quarantined file name for Stats.
func (e *Engine) noteQuarantine(file string) {
	e.mu.Lock()
	e.quarantined = append(e.quarantined, file)
	e.mu.Unlock()
}

// quarantineEntry takes a corrupt index out of service mid-serve: it
// unloads the entry (if it is still the cataloged one) and moves its
// backing file aside. The mapping behind any in-flight queries stays valid
// until they drain; new requests get ErrUnknownIndex.
func (e *Engine) quarantineEntry(name string, ent *catalogEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	old := *e.catalog.Load()
	if old[name] != ent {
		return // replaced or unloaded since; nothing to do
	}
	next := make(map[string]*catalogEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	e.catalog.Store(&next)
	e.retireEntryLocked(ent)
	if ent.path != "" {
		if err := os.Rename(ent.path, ent.path+".quarantine"); err == nil {
			e.quarantined = append(e.quarantined, filepath.Base(ent.path))
		}
	}
}

// Unload removes the index named name, reporting whether it was loaded.
// Unloading from a closed engine is a no-op: Close already emptied the
// catalog, and resurrecting retirement state after it drained would leak
// the mapping.
func (e *Engine) Unload(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	old := *e.catalog.Load()
	ent, ok := old[name]
	if !ok {
		return false
	}
	next := make(map[string]*catalogEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	e.catalog.Store(&next)
	e.retireEntryLocked(ent)
	return true
}

// Close empties the catalog and closes every index the engine still holds —
// current, plus any retired mapping whose queries never drained — releasing
// the file mappings behind format-v4 indexes. Retired mappings normally
// unmap long before this, when their last in-flight query returns; Close is
// the backstop. Call it only after no queries can be in flight (after
// http.Server.Shutdown has drained); a query racing Close on a mapped index
// would fault. Idempotent; the engine serves no queries afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var errs []error
	cat := *e.catalog.Load()
	e.catalog.Store(&map[string]*catalogEntry{})
	for name, ent := range cat {
		ent.retired.Store(true)
		ent.release() // the catalog reference; with no queries in flight this closes now
		if ent.closed.Load() && ent.closeErr != nil {
			errs = append(errs, fmt.Errorf("server: closing %s: %w", name, ent.closeErr))
		}
	}
	for _, ent := range e.retired {
		if ent.closed.Load() {
			if ent.closeErr != nil {
				errs = append(errs, fmt.Errorf("server: closing retired %s: %w", ent.idx.Name(), ent.closeErr))
			}
			continue
		}
		if err := ent.idx.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing retired %s: %w", ent.idx.Name(), err))
		}
	}
	e.retired = nil
	return errors.Join(errs...)
}

// MappedBytes sums the mapped footprint of everything the engine still
// holds open: the cataloged indexes plus retired mappings whose in-flight
// queries have not yet drained. A reload or compaction loop must keep this
// bounded; growth proportional to reload count is the leak the refcounted
// retirement discipline exists to prevent.
func (e *Engine) MappedBytes() int64 {
	var n int64
	for _, ent := range *e.catalog.Load() {
		if ent.acquire() {
			n += ent.idx.MappedBytes()
			ent.release()
		}
	}
	e.mu.Lock()
	for _, ent := range e.retired {
		if !ent.closed.Load() {
			n += ent.mapped
		}
	}
	e.mu.Unlock()
	return n
}

// Get returns the index named name.
func (e *Engine) Get(name string) (era.Queryable, bool) {
	ent, ok := (*e.catalog.Load())[name]
	if !ok {
		return nil, false
	}
	return ent.idx, true
}

// Names returns the loaded index names, sorted.
func (e *Engine) Names() []string {
	cat := *e.catalog.Load()
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Ready reports whether the engine should receive new traffic: it is not
// closed, has not been marked draining (SetReady(false)), and serves at
// least one index — an engine whose whole catalog was quarantined or never
// loaded is alive but not ready. The /readyz endpoint and the cluster
// router's health checker read this.
func (e *Engine) Ready() bool {
	if e.notReady.Load() {
		return false
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	return !closed && len(*e.catalog.Load()) > 0
}

// SetReady marks the engine ready (the default) or draining; see Ready.
func (e *Engine) SetReady(ready bool) { e.notReady.Store(!ready) }

// Query answers one op against the index named index. Results may be served
// from the cache; treat Result.Occurrences as read-only.
func (e *Engine) Query(index string, op era.Op) (era.Result, error) {
	res, err := e.Batch(index, []era.Op{op})
	if err != nil {
		return era.Result{}, err
	}
	return res[0], nil
}

// Batch answers ops against the index named index, in order. Cached results
// are served directly; the remaining ops share one era.Index.Batch call, so
// tree descents for related patterns are amortized. Treat the Occurrences
// of every result as read-only.
func (e *Engine) Batch(index string, ops []era.Op) ([]era.Result, error) {
	ent, err := e.acquireEntry(index)
	if err != nil {
		return nil, err
	}
	defer ent.release()
	return e.batchEntry(context.Background(), ent, ops)
}

// acquireEntry resolves a name to its catalog entry with an in-flight
// reference held; the caller must release it. The retry loop covers an
// entry draining between the catalog load and the acquire — retirement
// swaps the catalog before dropping the reference, so a reloaded snapshot
// is already visible by then and the loop terminates.
//
// Checksummed indexes verify lazily, and this is the first-touch gate: an
// index that turns out corrupt is quarantined here — unloaded, its file
// renamed aside — and the request fails with ErrCorruptIndex instead of a
// wrong answer. The rest of the catalog keeps serving.
func (e *Engine) acquireEntry(index string) (*catalogEntry, error) {
	for {
		ent, ok := (*e.catalog.Load())[index]
		if !ok {
			return nil, fmt.Errorf("server: %w: no index named %q loaded", ErrUnknownIndex, index)
		}
		if !ent.acquire() {
			continue
		}
		if c, checked := ent.idx.(interface{ CheckErr() error }); checked {
			if err := c.CheckErr(); err != nil {
				ent.release()
				e.quarantineEntry(index, ent)
				return nil, fmt.Errorf("server: %w: %q: %v", ErrCorruptIndex, index, err)
			}
		}
		return ent, nil
	}
}

// Acquire resolves a name to its index with an in-flight reference held,
// going through the same first-touch corruption gate as query serving. The
// caller must invoke the returned release exactly once when done; until
// then the index cannot be retired out from under it. The shard-serving
// endpoints use this to hand raw content bytes out safely.
func (e *Engine) Acquire(index string) (era.Queryable, func(), error) {
	ent, err := e.acquireEntry(index)
	if err != nil {
		return nil, nil, err
	}
	return ent.idx, ent.release, nil
}

// BatchChecked is Batch with per-op plan validation (era.Query.Validate):
// each op's own requirements are enforced — membership ops need a non-empty
// pattern inside the index's alphabet, analytics ops check their own
// parameters (k, min_len, document ordinals) and pattern-less ops are not
// rejected for having no pattern. Failures come back wrapping ErrBadPattern
// and name the op for multi-op batches. Validation and execution use one
// catalog snapshot, so a concurrent hot reload cannot slip a pattern past a
// check made against a different index's alphabet. The HTTP layer serves
// through this; Batch keeps the lenient library semantics.
//
// ctx is honored by the analytics executors (their long walks poll it
// periodically), so a canceled request or an expired server deadline
// abandons the work and surfaces ctx's error instead of running to
// completion against a client that already hung up.
func (e *Engine) BatchChecked(ctx context.Context, index string, ops []era.Op) ([]era.Result, error) {
	ent, err := e.acquireEntry(index)
	if err != nil {
		return nil, err
	}
	defer ent.release()
	a := ent.idx.Alphabet()
	numDocs := ent.idx.NumDocs()
	for i, op := range ops {
		prefix := ""
		if len(ops) > 1 {
			prefix = fmt.Sprintf("op %d: ", i)
		}
		if err := op.Validate(a, numDocs); err != nil {
			return nil, fmt.Errorf("server: %w: %s%v", ErrBadPattern, prefix, err)
		}
	}
	return e.batchEntry(ctx, ent, ops)
}

// batchEntry answers ops against one resolved catalog entry; the caller
// holds an in-flight reference on it. Analytics ops execute through the
// layer's ctx-aware executor directly (membership ops share one amortized
// Queryable.Batch call, which cannot carry a context); a ctx cancellation
// aborts the whole batch with ctx's error, while any other analytics
// failure leaves that op's zero Result — the same discipline
// Queryable.Batch applies.
func (e *Engine) batchEntry(ctx context.Context, ent *catalogEntry, ops []era.Op) ([]era.Result, error) {
	e.queries.Add(int64(len(ops)))

	// A live index mutates under a stable load epoch, so its cache keys get
	// a second component: the mutation epoch observed before querying.
	// Results computed here may span a mutation (each op acquires its own
	// snapshot), so a post-put epoch re-check purges anything possibly
	// stale — same discipline as the retirement re-check below.
	prefix := epochPrefix(ent.epoch)
	var liveEpoch uint64
	live, isLive := ent.idx.(Mutable)
	if isLive {
		liveEpoch = live.Epoch()
		prefix += strconv.FormatUint(liveEpoch, 36) + "|"
	}

	// Patterns containing the reserved terminator byte can only "match"
	// the sentinel the builder appends internally — never corpus content —
	// so they are answered not-found without consulting the tree. Clients
	// must not see phantom occurrences of the internal '$'. Analytics ops
	// are exempt: their executors are content-windowed already (labels and
	// windows containing the terminator never surface), and several of them
	// legitimately carry no pattern at all.
	sane := func(op era.Op) bool {
		return op.Kind.IsAnalytic() || bytes.IndexByte(op.Pattern, alphabet.Terminator) < 0
	}

	// runAnalytic executes one analytics plan through the layer's ctx-aware
	// executor. A cancellation aborts the batch; any other executor error
	// (e.g. a corrupt index detected mid-walk) leaves the zero Result.
	runAnalytic := func(op era.Op) (era.Result, error) {
		a, err := ent.idx.Analytics(ctx, op)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return era.Result{}, cerr
			}
			return era.Result{}, nil
		}
		return a, nil
	}

	if e.cache == nil {
		results := make([]era.Result, len(ops))
		var memberOps []era.Op
		var memberAt []int
		for i, op := range ops {
			if !sane(op) {
				continue
			}
			if op.Kind.IsAnalytic() {
				a, err := runAnalytic(op)
				if err != nil {
					return nil, err
				}
				results[i] = a
				continue
			}
			memberOps = append(memberOps, op)
			memberAt = append(memberAt, i)
		}
		for j, r := range ent.idx.Batch(memberOps) {
			results[memberAt[j]] = r
		}
		return results, nil
	}

	results := make([]era.Result, len(ops))
	keys := make([]string, len(ops))
	var missOps []era.Op
	var missAt []int
	var analyticAt []int
	var hits int64
	for i, op := range ops {
		if !sane(op) {
			continue // results[i] stays the zero Result: not found
		}
		keys[i] = cacheKey(prefix, op)
		if r, ok := e.cache.get(keys[i]); ok {
			results[i] = r
			hits++
			continue
		}
		if op.Kind.IsAnalytic() {
			analyticAt = append(analyticAt, i)
			continue
		}
		missOps = append(missOps, op)
		missAt = append(missAt, i)
	}
	e.cacheHits.Add(hits)
	e.cacheMisses.Add(int64(len(missOps) + len(analyticAt)))
	// The cache is bounded in entries, so huge answer payloads (an
	// unlimited-max query on a frequent pattern can return O(corpus)
	// offsets; a low-min_len top-k can rank O(corpus) candidates) would
	// make its memory unbounded; serve them uncached.
	cachePut := func(key string, r era.Result) {
		if len(r.Occurrences) <= maxCachedOccurrences &&
			len(r.Top) <= maxCachedOccurrences &&
			len(r.Stats) <= maxCachedOccurrences {
			e.cache.put(key, r)
		}
	}
	if len(missOps)+len(analyticAt) == 0 {
		return results, nil
	}
	for _, i := range analyticAt {
		a, err := runAnalytic(ops[i])
		if err != nil {
			return nil, err
		}
		results[i] = a
		cachePut(keys[i], a)
	}
	for j, r := range ent.idx.Batch(missOps) {
		results[missAt[j]] = r
		cachePut(keys[missAt[j]], r)
	}
	// Re-check after the puts: a Load/Unload that retired this entry — or a
	// mutation that moved a live index past the epoch these results were
	// keyed under — may have run its purge before the puts landed, which
	// would strand entries under a key prefix nothing ever purges again.
	// The retire path sets the flag (or bumps the epoch) before purging, so
	// whichever side runs second clears the stragglers.
	if ent.retired.Load() || (isLive && live.Epoch() != liveEpoch) {
		e.cache.purgePrefix(prefix)
	}
	return results, nil
}

// AppendDocs appends documents to the live index named index, returning
// their assigned stable ids, and purges the index's cached results. The
// documents must not contain the reserved terminator byte
// (ErrBadDocument); a static index rejects with ErrNotMutable.
func (e *Engine) AppendDocs(index string, docs [][]byte) ([]uint64, error) {
	ent, err := e.acquireEntry(index)
	if err != nil {
		return nil, err
	}
	defer ent.release()
	live, ok := ent.idx.(Mutable)
	if !ok {
		return nil, fmt.Errorf("server: %w: index %q is a static snapshot", ErrNotMutable, index)
	}
	select {
	case ent.appendSem <- struct{}{}:
		defer func() { <-ent.appendSem }()
	default:
		e.appendRejects.Add(1)
		return nil, fmt.Errorf("server: %w: index %q already has %d appends in flight", ErrSaturated, index, cap(ent.appendSem))
	}
	for i, d := range docs {
		if j := bytes.IndexByte(d, alphabet.Terminator); j >= 0 {
			return nil, fmt.Errorf("server: %w: document %d contains the reserved terminator byte %q at offset %d",
				ErrBadDocument, i, alphabet.Terminator, j)
		}
	}
	ids, err := live.Append(docs)
	if err != nil {
		return nil, err
	}
	// One purge of the load-epoch prefix covers every mutation epoch's keys.
	e.cache.purgePrefix(epochPrefix(ent.epoch))
	return ids, nil
}

// DeleteDoc tombstones the document with the given stable id in the live
// index named index, reporting whether it named a live document, and purges
// the index's cached results on success.
func (e *Engine) DeleteDoc(index string, id uint64) (bool, error) {
	ent, err := e.acquireEntry(index)
	if err != nil {
		return false, err
	}
	defer ent.release()
	live, ok := ent.idx.(Mutable)
	if !ok {
		return false, fmt.Errorf("server: %w: index %q is a static snapshot", ErrNotMutable, index)
	}
	deleted, err := live.Delete(id)
	if err != nil {
		return false, err
	}
	if deleted {
		e.cache.purgePrefix(epochPrefix(ent.epoch))
	}
	return deleted, nil
}

// maxCachedOccurrences bounds the size of one cached result; entries × this
// bounds the cache's worst-case memory.
const maxCachedOccurrences = 1024

// epochPrefix is the cache-key prefix shared by every result of one index
// load; purging it evicts exactly that load's entries.
func epochPrefix(epoch uint64) string {
	return strconv.FormatUint(epoch, 36) + "|"
}

// cacheKey encodes everything a result depends on: the entry's key prefix
// (load epoch — unique per Load — plus, for live indexes, the mutation
// epoch) and the op's canonical fingerprint, which covers every parameter
// of every op kind injectively.
func cacheKey(prefix string, op era.Op) string {
	return prefix + op.Fingerprint()
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Indexes       int      `json:"indexes"`
	Queries       int64    `json:"queries"`
	CacheHits     int64    `json:"cache_hits"`
	CacheMisses   int64    `json:"cache_misses"`
	CacheSize     int      `json:"cache_size"`
	MappedBytes   int64    `json:"mapped_bytes"`
	AppendRejects int64    `json:"append_rejects"`
	Quarantined   []string `json:"quarantined,omitempty"`
}

// Stats returns a snapshot of engine activity.
func (e *Engine) Stats() Stats {
	s := Stats{
		Indexes:       len(*e.catalog.Load()),
		Queries:       e.queries.Load(),
		CacheHits:     e.cacheHits.Load(),
		CacheMisses:   e.cacheMisses.Load(),
		CacheSize:     e.cache.len(),
		MappedBytes:   e.MappedBytes(),
		AppendRejects: e.appendRejects.Load(),
	}
	e.mu.Lock()
	s.Quarantined = append([]string(nil), e.quarantined...)
	e.mu.Unlock()
	return s
}
