package era

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/suffixtree"
)

// Index file format (little endian):
//
//	magic     uint32 'ERAI'
//	version   uint32 2
//	nameLen   uint32, corpus name bytes    (version ≥ 2 only)
//	aNameLen  uint32, alphabet name bytes  (version ≥ 2 only)
//	alphaLen  uint32, alphabet symbols
//	nDocs     uint32, doc end offsets (uint32 each)
//	dataLen   uint32, string bytes (terminator included)
//	tree      suffixtree serialization
//
// Version 1 files (written before indexes carried names) are identical
// minus the two name blocks; ReadIndex accepts both and gives v1 indexes
// the empty corpus name and the alphabet name "stored". The query server
// falls back to the file's base name then, so old index files stay
// hot-loadable.
const (
	indexMagic   = 0x45524149
	indexVersion = 2
	// maxNameLen bounds the corpus and alphabet name fields. WriteTo
	// enforces it so every written index is readable; ReadIndex enforces it
	// so a corrupt or hostile length field fails cleanly instead of
	// demanding a giant allocation.
	maxNameLen = 64 << 10
)

// WriteTo serializes the index (name, string, document map and tree) so it
// can be reopened with ReadIndex without rebuilding. It satisfies
// io.WriterTo.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	if len(x.name) > maxNameLen || len(x.alpha.Name()) > maxNameLen {
		return 0, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	bw := bufio.NewWriter(w)
	var total int64
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		n, err := bw.Write(b[:])
		total += int64(n)
		return err
	}
	if err := put32(indexMagic); err != nil {
		return total, err
	}
	if err := put32(indexVersion); err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.name))); err != nil {
		return total, err
	}
	n0, err := bw.WriteString(x.name)
	total += int64(n0)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.alpha.Name()))); err != nil {
		return total, err
	}
	n0, err = bw.WriteString(x.alpha.Name())
	total += int64(n0)
	if err != nil {
		return total, err
	}
	syms := x.alpha.Symbols()
	if err := put32(uint32(len(syms))); err != nil {
		return total, err
	}
	n, err := bw.Write(syms)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.docEnds))); err != nil {
		return total, err
	}
	for _, e := range x.docEnds {
		if err := put32(uint32(e)); err != nil {
			return total, err
		}
	}
	if err := put32(uint32(len(x.data))); err != nil {
		return total, err
	}
	n, err = bw.Write(x.data)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := bw.Flush(); err != nil {
		return total, err
	}
	tn, err := x.tree.WriteTo(w)
	total += tn
	return total, err
}

// ReadIndex deserializes an index written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	m, err := get32()
	if err != nil {
		return nil, fmt.Errorf("era: reading index header: %w", err)
	}
	if m != indexMagic {
		return nil, fmt.Errorf("era: bad index magic %#x", m)
	}
	v, err := get32()
	if err != nil {
		return nil, err
	}
	if v < 1 || v > indexVersion {
		return nil, fmt.Errorf("era: unsupported index version %d", v)
	}
	getString := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if n > maxNameLen {
			return "", fmt.Errorf("era: corrupt index: name field of %d bytes", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var name string
	alphaName := "stored"
	if v >= 2 {
		if name, err = getString(); err != nil {
			return nil, err
		}
		if alphaName, err = getString(); err != nil {
			return nil, err
		}
	}
	// The remaining length fields also come from the (possibly corrupt)
	// file, so nothing is allocated proportionally to them up front:
	// symbols are bounded by the alphabet invariant, and doc ends / string
	// bytes are read incrementally so a truncated or hostile header fails
	// on the missing bytes instead of attempting a giant allocation.
	nSyms, err := get32()
	if err != nil {
		return nil, err
	}
	if nSyms > 256 {
		return nil, fmt.Errorf("era: corrupt index: alphabet of %d symbols", nSyms)
	}
	syms := make([]byte, nSyms)
	if _, err := io.ReadFull(br, syms); err != nil {
		return nil, err
	}
	alpha, err := alphabet.New(alphaName, syms)
	if err != nil {
		return nil, err
	}
	nDocs, err := get32()
	if err != nil {
		return nil, err
	}
	docEnds := make([]int32, 0, min(nDocs, 1<<16))
	for i := uint32(0); i < nDocs; i++ {
		e, err := get32()
		if err != nil {
			return nil, err
		}
		docEnds = append(docEnds, int32(e))
	}
	dataLen, err := get32()
	if err != nil {
		return nil, err
	}
	data := make([]byte, 0, min(dataLen, 1<<24))
	var chunk [64 << 10]byte
	for uint32(len(data)) < dataLen {
		want := dataLen - uint32(len(data))
		if want > uint32(len(chunk)) {
			want = uint32(len(chunk))
		}
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, err
		}
		data = append(data, chunk[:want]...)
	}
	mem, err := seq.NewMem(alpha, data)
	if err != nil {
		return nil, err
	}
	tree, err := suffixtree.Read(br, mem)
	if err != nil {
		return nil, err
	}
	return &Index{name: name, tree: tree, data: data, alpha: alpha, docEnds: docEnds}, nil
}

// WriteFile saves the index to path.
func (x *Index) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := x.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenIndex reads an index file written by WriteFile (or WriteTo). Indexes
// saved without a name adopt the file's base name (extension stripped), so
// every index loaded from disk is addressable.
func OpenIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	idx, err := ReadIndex(f)
	if err != nil {
		// ReadIndex errors already carry the package prefix.
		return nil, fmt.Errorf("reading index %s: %w", path, err)
	}
	if idx.name == "" {
		base := filepath.Base(path)
		idx.name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return idx, nil
}
