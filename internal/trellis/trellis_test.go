package trellis

import (
	"errors"
	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/ukkonen"
	"era/internal/workload"
)

func publish(t testing.TB, a *alphabet.Alphabet, data []byte) *seq.File {
	t.Helper()
	disk := diskio.NewDisk(sim.DefaultModel())
	f, err := seq.Publish(disk, "input.seq", a, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildSerialMatchesOracle(t *testing.T) {
	for _, k := range workload.Kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			a, err := workload.AlphabetOf(k)
			if err != nil {
				t.Fatal(err)
			}
			data := workload.MustGenerate(k, 2000, 9)
			f := publish(t, a, data)
			res, err := BuildSerial(f, Options{MemoryBudget: 16 * 1024, Assemble: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(true); err != nil {
				t.Fatal(err)
			}
			m, err := seq.NewMem(a, data)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := ukkonen.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Tree.NumNodes(), oracle.NumNodes(); got != want {
				t.Errorf("node count %d, want %d", got, want)
			}
			gl, ol := res.Tree.Leaves(res.Tree.Root()), oracle.Leaves(oracle.Root())
			for i := range gl {
				if gl[i] != ol[i] {
					t.Fatalf("leaf order differs at %d: %d vs %d", i, gl[i], ol[i])
				}
			}
			if res.Stats.Partitions < 2 {
				t.Errorf("expected multiple partitions, got %d", res.Stats.Partitions)
			}
		})
	}
}

func TestRejectsStringLargerThanMemory(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 8000, 2)
	f := publish(t, alphabet.DNA, data)
	// 8000 DNA symbols pack to 2000 bytes; a 1 KB budget cannot hold them.
	_, err := BuildSerial(f, Options{MemoryBudget: 1024})
	if !errors.Is(err, ErrStringTooLarge) {
		t.Fatalf("expected ErrStringTooLarge, got %v", err)
	}
}

func TestMergeFaultsGrowWhenMemoryShrinks(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 6000, 4)
	tight, err := BuildSerial(publish(t, alphabet.DNA, data), Options{MemoryBudget: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := BuildSerial(publish(t, alphabet.DNA, data), Options{MemoryBudget: 512 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.MergeFaults <= roomy.Stats.MergeFaults {
		t.Errorf("merge faults: tight %d should exceed roomy %d", tight.Stats.MergeFaults, roomy.Stats.MergeFaults)
	}
	if tight.Stats.VirtualTime <= roomy.Stats.VirtualTime {
		t.Errorf("modeled time: tight %v should exceed roomy %v", tight.Stats.VirtualTime, roomy.Stats.VirtualTime)
	}
}
