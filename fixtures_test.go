package era

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateFixtures rewrites the committed images under
// testdata/fixtures — the corpus the CI `era verify` gate runs against, so
// format changes that break old images are caught by a real file, not a
// fresh in-test build. Gated behind ERA_REGEN_FIXTURES=1: run it exactly
// when the on-disk format legitimately changes, and commit the result.
func TestRegenerateFixtures(t *testing.T) {
	if os.Getenv("ERA_REGEN_FIXTURES") != "1" {
		t.Skip("set ERA_REGEN_FIXTURES=1 to rewrite testdata/fixtures")
	}
	docs := [][]byte{
		[]byte("GATTACAGATTACAGATTACA"),
		[]byte("CCCGATTACACCCGGGTTTAAA"),
		[]byte("ACGTACGTACGTACGTACGT"),
		[]byte("TTAGGGTTAGGGTTAGGG"),
	}
	dir := filepath.Join("testdata", "fixtures")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mono.SetName("fixture-mono")
	if err := WriteFileV4(filepath.Join(dir, "mono.idx"), mono); err != nil {
		t.Fatal(err)
	}

	sharded, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sharded.SetName("fixture-sharded")
	if err := WriteFileV4(filepath.Join(dir, "sharded.idx"), sharded); err != nil {
		t.Fatal(err)
	}

	// A live directory mid-flight: one sealed tier, one tombstone, and
	// unsealed documents living only in the WAL.
	ldir := filepath.Join(dir, "live")
	lx, err := NewLive("fixture-live", &LiveConfig{Dir: ldir, MemtableMaxDocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := lx.Append(docs[:2]) // seals into a tier
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lx.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := lx.Append(docs[2:3]); err != nil { // stays in the WAL
		t.Fatal(err)
	}
	// No Close: closing would seal the memtable and rotate the log, erasing
	// the mid-flight state. The process exit releases the mappings.

	for _, p := range []string{
		filepath.Join(dir, "mono.idx"),
		filepath.Join(dir, "sharded.idx"),
		ldir,
	} {
		rep, err := Verify(p)
		if err != nil {
			t.Fatalf("verifying fresh fixture %s: %v", p, err)
		}
		if !rep.OK() {
			t.Fatalf("fresh fixture %s unhealthy: %v", p, rep.Problems)
		}
	}
}
