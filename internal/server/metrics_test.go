package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"era"
)

// v4Fixture writes a v4 index file and returns its path.
func v4Fixture(t *testing.T, name string) string {
	t.Helper()
	idx, err := era.BuildCorpus([][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CATTAGACATTAGA"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetName(name)
	p := filepath.Join(t.TempDir(), name+".idx")
	if err := era.WriteFileV4(p, idx); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMetricz drives queries over a mapped v4 index and checks the
// /metricz payload: per-op latency histograms populate and the index's
// mapped byte count is visible.
func TestMetricz(t *testing.T) {
	engine := NewEngine(16)
	if _, err := engine.LoadFile(v4Fixture(t, "mz")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	srv := httptest.NewServer(NewHandler(engine))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		res, err := http.Post(srv.URL+"/v1/query", "application/json",
			strings.NewReader(`{"index":"mz","op":"count","pattern":"ATTA"}`))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", res.StatusCode)
		}
	}
	res, err := http.Post(srv.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"index":"mz","ops":[{"op":"contains","pattern":"GAT"},{"op":"occurrences","pattern":"TA","max":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	mres, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(mres.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Ops["query"].Count != 5 {
		t.Errorf("query histogram count = %d, want 5", m.Ops["query"].Count)
	}
	if m.Ops["batch"].Count != 1 {
		t.Errorf("batch histogram count = %d, want 1", m.Ops["batch"].Count)
	}
	if q := m.Ops["query"]; q.Observed && (q.P99Us < q.P90Us || q.P90Us < q.P50Us) {
		t.Errorf("query quantiles inconsistent: %+v", q)
	}
	if len(m.Indexes) != 1 {
		t.Fatalf("metricz lists %d indexes, want 1", len(m.Indexes))
	}
	if m.Indexes[0].MappedBytes <= 0 {
		t.Errorf("mapped index reports mapped_bytes = %d, want > 0", m.Indexes[0].MappedBytes)
	}
	if m.Engine.Queries == 0 {
		t.Error("engine counters absent from metricz")
	}
}

// TestLatencyHistQuantiles pins the bucket math.
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.observe(3 * time.Microsecond) // bucket [2,4)µs → upper bound 3
	}
	for i := 0; i < 10; i++ {
		h.observe(1000 * time.Microsecond) // bucket [512,1024)µs → 1023
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50Us != 3 || s.P90Us != 3 {
		t.Errorf("p50/p90 = %d/%d, want 3/3", s.P50Us, s.P90Us)
	}
	if s.P99Us != 1023 {
		t.Errorf("p99 = %d, want 1023", s.P99Us)
	}
}

// TestEngineCloseLifecycle pins the refcounted retirement discipline: a hot
// reload with no queries in flight releases the replaced mapping
// immediately (the catalog reference was the last one), and Engine.Close —
// the post-drain backstop — closes whatever is still held, exactly once.
func TestEngineCloseLifecycle(t *testing.T) {
	engine := NewEngine(0)
	p := v4Fixture(t, "lc")
	if _, err := engine.LoadFile(p); err != nil {
		t.Fatal(err)
	}
	first, _ := engine.Get("lc")
	if first.MappedBytes() == 0 {
		t.Fatal("fixture did not open as a mapped index")
	}
	// Hot reload under the same name with nothing in flight: the replaced
	// mapping must drain and unmap right away, not linger until Close.
	if _, err := engine.LoadFile(p); err != nil {
		t.Fatal(err)
	}
	if got := first.MappedBytes(); got != 0 {
		t.Fatalf("retired index still maps %d bytes — retirement must release a drained mapping", got)
	}
	second, _ := engine.Get("lc")
	if got, want := engine.MappedBytes(), second.MappedBytes(); got != want {
		t.Fatalf("engine MappedBytes() = %d, want the live catalog's %d", got, want)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if second.MappedBytes() != 0 {
		t.Error("Close left mappings open")
	}
	if err := engine.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := engine.Load(second); err == nil {
		t.Error("Load succeeded on a closed engine")
	}
}
