package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"era"
)

// TestQuarantineServesHealthyCatalog pins the startup contract: a damaged
// file in the index directory is renamed aside and reported, and the rest of
// the catalog loads and serves.
func TestQuarantineServesHealthyCatalog(t *testing.T) {
	dir := t.TempDir()
	healthy := buildIndex(t, "healthy", 2000, 1)
	if err := era.WriteFileV4(filepath.Join(dir, "healthy.idx"), healthy); err != nil {
		t.Fatal(err)
	}
	if err := era.WriteFileV4(filepath.Join(dir, "corrupt.idx"), buildIndex(t, "doomed", 2000, 2)); err != nil {
		t.Fatal(err)
	}
	// Truncating to half is content damage the open detects immediately.
	img, err := os.ReadFile(filepath.Join(dir, "corrupt.idx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.idx"), img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(128)
	defer e.Close()
	names, err := e.LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "quarantined as corrupt.idx.quarantine") {
		t.Fatalf("LoadDir error = %v, want a quarantine report for corrupt.idx", err)
	}
	if len(names) != 1 || names[0] != "healthy" {
		t.Fatalf("loaded %v, want [healthy]", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "corrupt.idx.quarantine")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "corrupt.idx")); !os.IsNotExist(err) {
		t.Fatalf("damaged file still in place: %v", err)
	}
	if q := e.Stats().Quarantined; len(q) != 1 || q[0] != "corrupt.idx" {
		t.Fatalf("Stats.Quarantined = %v, want [corrupt.idx]", q)
	}

	pat := []byte("TGA")
	res, err := e.Query("healthy", era.Op{Kind: era.OpCount, Pattern: pat})
	if err != nil {
		t.Fatalf("query against surviving catalog: %v", err)
	}
	if res.Count != healthy.Count(pat) {
		t.Fatalf("Count = %d, want %d", res.Count, healthy.Count(pat))
	}
}

// TestQuarantineLazyCorruptionMidServe pins the first-touch path: damage
// that lands after load (so the header verified clean) is caught by the
// lazy section checksums on the first query, the request fails with
// ErrCorruptIndex instead of a wrong answer, and the index is taken out of
// service and renamed aside.
func TestQuarantineLazyCorruptionMidServe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lazy.idx")
	if err := era.WriteFileV4(path, buildIndex(t, "lazy", 2000, 3)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(128)
	defer e.Close()
	name, err := e.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte through the file; the read-only MAP_SHARED mapping sees
	// it, modeling media corruption between load and first use.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = e.Query(name, era.Op{Kind: era.OpCount, Pattern: []byte("TGA")})
	if !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("query over corrupted mapping: %v, want ErrCorruptIndex", err)
	}
	// Out of service: the entry is unloaded, the file renamed aside.
	if _, err := e.Query(name, era.Op{Kind: era.OpCount, Pattern: []byte("TGA")}); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("query after quarantine: %v, want ErrUnknownIndex", err)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if q := e.Stats().Quarantined; len(q) != 1 || q[0] != "lazy.idx" {
		t.Fatalf("Stats.Quarantined = %v, want [lazy.idx]", q)
	}
}

// blockingLive wraps a live index so its Append parks until the test says
// go, holding an engine append slot occupied.
type blockingLive struct {
	*era.LiveIndex
	entered chan struct{}
	gate    chan struct{}
}

func (b *blockingLive) Append(docs [][]byte) ([]uint64, error) {
	b.entered <- struct{}{}
	<-b.gate
	return b.LiveIndex.Append(docs)
}

func newBlockingLive(t *testing.T) *blockingLive {
	t.Helper()
	lx, err := era.NewLive("live", nil)
	if err != nil {
		t.Fatal(err)
	}
	// entered is buffered so appends after the gate opens don't block on an
	// absent listener.
	return &blockingLive{LiveIndex: lx, entered: make(chan struct{}, 8), gate: make(chan struct{})}
}

// TestEngineAppendBackpressure pins the in-flight bound: with the single
// append slot occupied, the next append rejects with ErrSaturated and the
// rejection is counted; once the slot frees, appends proceed.
func TestEngineAppendBackpressure(t *testing.T) {
	b := newBlockingLive(t)
	e := NewEngine(128)
	e.MaxInflightAppends = 1
	if err := e.Load(b); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	done := make(chan error, 1)
	go func() {
		_, err := e.AppendDocs("live", [][]byte{[]byte("GATTACA")})
		done <- err
	}()
	<-b.entered // the slow append holds the only slot

	if _, err := e.AppendDocs("live", [][]byte{[]byte("CCCC")}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("append at the bound: %v, want ErrSaturated", err)
	}
	if got := e.Stats().AppendRejects; got != 1 {
		t.Fatalf("AppendRejects = %d, want 1", got)
	}

	close(b.gate)
	if err := <-done; err != nil {
		t.Fatalf("parked append: %v", err)
	}
	// The slot is free again.
	if _, err := e.AppendDocs("live", [][]byte{[]byte("TTTT")}); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
}

// TestHTTPAppendSaturation pins the HTTP mapping: a saturated append comes
// back 503 with a Retry-After hint.
func TestHTTPAppendSaturation(t *testing.T) {
	b := newBlockingLive(t)
	e := NewEngine(128)
	e.MaxInflightAppends = 1
	if err := e.Load(b); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	done := make(chan error, 1)
	go func() {
		_, err := e.AppendDocs("live", [][]byte{[]byte("GATTACA")})
		done <- err
	}()
	<-b.entered
	defer func() {
		close(b.gate)
		<-done
	}()

	resp, err := http.Post(ts.URL+"/v1/indexes/live/docs", "application/json",
		strings.NewReader(`{"docs":["CCCC"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated append status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

// TestHTTPAppendBodyTooLarge pins the request-size guard: a body past the
// append limit maps to 413, not a decode 400.
func TestHTTPAppendBodyTooLarge(t *testing.T) {
	lx, err := era.NewLive("live", nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(128)
	if err := e.Load(lx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	huge := strings.Repeat("A", 17<<20) // past the 16 MiB append cap
	resp, err := http.Post(ts.URL+"/v1/indexes/live/docs", "application/json",
		strings.NewReader(`{"docs":["`+huge+`"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized append status = %d, want 413", resp.StatusCode)
	}
}
