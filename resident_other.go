//go:build !linux

package era

// residentBytes is unavailable off Linux; -1 means "unknown" to /metricz.
func residentBytes(b []byte) int64 {
	if len(b) == 0 {
		return 0
	}
	return -1
}
