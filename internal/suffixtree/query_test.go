package suffixtree

import (
	"math/rand"
	"testing"
)

// TestMatchTraceAgreesWithFind checks MatchTrace against Find on random
// patterns, including resumed descents: each pattern restarts from the
// longest prefix it shares with its predecessor, exactly as Index.Batch
// drives it.
func TestMatchTraceAgreesWithFind(t *testing.T) {
	s := "TGGTGGTGGTGCGGTGATGGTGCGGATTGGCCAATTGGTTGTTGAACCGT$"
	m := mem(t, s)
	tr := buildFromSA(t, m)

	rng := rand.New(rand.NewSource(1))
	patterns := make([][]byte, 200)
	for i := range patterns {
		if i%2 == 0 {
			l := rng.Intn(10)
			off := rng.Intn(len(s) - 1 - l)
			patterns[i] = []byte(s[off : off+l])
		} else {
			p := make([]byte, 1+rng.Intn(8))
			for j := range p {
				p[j] = "ACGT"[rng.Intn(4)]
			}
			patterns[i] = p
		}
	}

	trace := make([]Locus, 16)
	var prev []byte
	prevMatched := 0
	for _, p := range patterns {
		// Resume from the shared prefix with the previous pattern.
		l := 0
		for l < len(p) && l < len(prev) && p[l] == prev[l] {
			l++
		}
		if l > prevMatched {
			l = prevMatched
		}
		matched := tr.MatchTrace(p, l, trace)
		prev, prevMatched = p, matched

		wantLoc, wantOK := tr.Find(p)
		if (matched == len(p)) != wantOK {
			t.Fatalf("MatchTrace(%q) matched %d, Find ok=%v", p, matched, wantOK)
		}
		if !wantOK {
			continue
		}
		if len(p) > 0 {
			got := trace[len(p)-1]
			if got != wantLoc {
				t.Fatalf("MatchTrace(%q) locus = %+v, Find = %+v", p, got, wantLoc)
			}
		}
		// Every intermediate locus must equal a fresh Find of the prefix.
		for d := 1; d <= len(p); d++ {
			want, ok := tr.Find(p[:d])
			if !ok || trace[d-1] != want {
				t.Fatalf("MatchTrace(%q) trace[%d] = %+v, Find(%q) = %+v, %v", p, d-1, trace[d-1], p[:d], want, ok)
			}
		}
	}
}

// TestMatchTracePartialFailure pins that a failed match still reports how
// far it got and leaves that prefix's trace usable.
func TestMatchTracePartialFailure(t *testing.T) {
	m := mem(t, "TGGTGGTGGTGCGGTGATGGTGC$")
	tr := buildFromSA(t, m)

	trace := make([]Locus, 8)
	p := []byte("TGATXX") // TGAT matches, then diverges
	matched := tr.MatchTrace(p, 0, trace)
	if matched != 4 {
		t.Fatalf("MatchTrace(%q) matched %d, want 4", p, matched)
	}
	// Resuming a pattern that shares the 4 matched symbols must succeed
	// without rewalking them.
	q := []byte("TGATGG")
	if got := tr.MatchTrace(q, matched, trace); got != len(q) {
		t.Fatalf("resumed MatchTrace(%q) matched %d, want %d", q, got, len(q))
	}
	want, ok := tr.Find(q)
	if !ok || trace[len(q)-1] != want {
		t.Fatalf("resumed locus = %+v, Find(%q) = %+v, %v", trace[len(q)-1], q, want, ok)
	}
}
