package core

import (
	"fmt"

	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// BuildSubTree is Algorithm BuildSubTree (§4.2.2): it materializes the
// suffix sub-tree from the L and B arrays produced by SubTreePrepare in one
// left-to-right batch pass with a stack — sequential memory access, no
// top-down traversals (the decoupling that gives ERa-str+mem its edge over
// ERa-str, Fig. 7).
//
// The sub-tree hangs below a fresh root whose single outgoing edge starts
// with the S-prefix; Graft assembles sub-trees under the top trie.
func BuildSubTree(view seq.String, clock *sim.Clock, model sim.CostModel, p Prepared) (*suffixtree.Tree, error) {
	m := len(p.L)
	if m == 0 {
		return nil, fmt.Errorf("core: prefix %q has no occurrences", p.Prefix.Label)
	}
	lcp, err := fillLCP(p, make([]int32, m))
	if err != nil {
		return nil, err
	}
	t, err := suffixtree.FromSortedSuffixes(view, p.L, lcp)
	if err != nil {
		return nil, fmt.Errorf("core: prefix %q: %w", p.Prefix.Label, err)
	}
	// One stack pass touching 2m nodes, sequential access.
	clock.Advance(model.CPUTime(int64(2 * m)))
	return t, nil
}

// buildSubTreeInto is BuildSubTree recycling a caller-owned tree and LCP
// scratch: the tree is Reset and rebuilt in place, so only callers that drop
// each sub-tree after accounting (no grafting, no collection) may use it.
// Accounting is identical to BuildSubTree.
func buildSubTreeInto(tree *suffixtree.Tree, lcp []int32, view seq.String, clock *sim.Clock, model sim.CostModel, p Prepared) (*suffixtree.Tree, error) {
	m := len(p.L)
	if m == 0 {
		return nil, fmt.Errorf("core: prefix %q has no occurrences", p.Prefix.Label)
	}
	lcp, err := fillLCP(p, lcp)
	if err != nil {
		return nil, err
	}
	tree.Reset()
	tree.EnsureCap(2 * m)
	t, err := suffixtree.FromSortedSuffixesInto(tree, p.L, lcp)
	if err != nil {
		return nil, fmt.Errorf("core: prefix %q: %w", p.Prefix.Label, err)
	}
	clock.Advance(model.CPUTime(int64(2 * m)))
	return t, nil
}

// fillLCP translates the B offsets of a Prepared into the pairwise LCP array
// FromSortedSuffixes consumes. lcp must have length len(p.L).
func fillLCP(p Prepared, lcp []int32) ([]int32, error) {
	if len(lcp) > 0 {
		lcp[0] = 0
	}
	for i := 1; i < len(lcp); i++ {
		if p.B[i].Offset <= 0 {
			return nil, fmt.Errorf("core: prefix %q: B[%d] undefined", p.Prefix.Label, i)
		}
		lcp[i] = p.B[i].Offset
	}
	return lcp, nil
}

// VerifyPrepared cross-checks the B triplets against the string view: the
// branches to L[i-1] and L[i] must diverge exactly at Offset with symbols
// C1 < C2. Used by tests and the -validate mode; not part of the hot path.
func VerifyPrepared(view seq.String, p Prepared) error {
	n := int32(view.Len())
	for i := 1; i < len(p.L); i++ {
		b := p.B[i]
		oa, ob := p.L[i-1]+b.Offset, p.L[i]+b.Offset
		if oa >= n || ob >= n {
			return fmt.Errorf("B[%d]: offset %d past string end", i, b.Offset)
		}
		if got := view.At(int(oa)); got != b.C1 {
			return fmt.Errorf("B[%d]: C1 = %q but S[%d+%d] = %q", i, b.C1, p.L[i-1], b.Offset, got)
		}
		if got := view.At(int(ob)); got != b.C2 {
			return fmt.Errorf("B[%d]: C2 = %q but S[%d+%d] = %q", i, b.C2, p.L[i], b.Offset, got)
		}
		if b.C1 >= b.C2 {
			return fmt.Errorf("B[%d]: branches out of order (%q ≥ %q)", i, b.C1, b.C2)
		}
		// The Offset symbols before the divergence must match.
		for d := int32(0); d < b.Offset; d++ {
			if view.At(int(p.L[i-1]+d)) != view.At(int(p.L[i]+d)) {
				return fmt.Errorf("B[%d]: suffixes diverge at %d before recorded offset %d", i, d, b.Offset)
			}
		}
	}
	return nil
}
