package era

import (
	"fmt"
	"os"
	"path/filepath"
)

// VerifyReport is the result of Verify: what was checked and what failed.
// An empty Problems list means everything reachable from the path is
// healthy.
type VerifyReport struct {
	Path     string
	Kind     string   // "monolithic", "sharded", or "live"
	Notes    []string // components checked, human-oriented
	Problems []string // failures found
}

func (r *VerifyReport) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *VerifyReport) problem(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// OK reports whether verification found no problems.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Verify checks every stored checksum reachable from path — an index file
// of any format, or a live directory (its manifest, every sealed tier, and
// the write-ahead log) — without modifying anything on disk. Unlike opening
// a live directory, Verify never truncates a torn WAL tail or quarantines a
// damaged tier; it only reports. The returned error covers being unable to
// start (path unreadable); verification failures land in
// VerifyReport.Problems.
func Verify(path string) (*VerifyReport, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return verifyLiveDir(path)
	}
	if filepath.Base(path) == liveManifestName {
		return verifyLiveDir(filepath.Dir(path))
	}
	return verifyIndexFile(path)
}

func verifyIndexFile(path string) (*VerifyReport, error) {
	rep := &VerifyReport{Path: path, Kind: "monolithic"}
	q, err := OpenIndex(path)
	if err != nil {
		rep.problem("open: %v", err)
		return rep, nil
	}
	defer q.Close()
	switch x := q.(type) {
	case *Index:
		if x.ck == nil {
			rep.note("opened cleanly; no stored section checksums (pre-checksum format, stream footer verified at read where present)")
			return rep, nil
		}
		if err := x.VerifyChecksums(); err != nil {
			rep.problem("%v", err)
			return rep, nil
		}
		rep.note("header and all section checksums verified (%d documents, %d symbols)", x.NumDocs(), x.Len())
	case *ShardedIndex:
		rep.Kind = "sharded"
		if err := x.VerifyChecksums(); err != nil {
			rep.problem("%v", err)
			return rep, nil
		}
		rep.note("all %d shards verified (%d documents)", x.NumShards(), x.NumDocs())
	default:
		rep.Kind = "live"
		rep.problem("open returned unexpected index type %T", q)
	}
	return rep, nil
}

// verifyLiveDir checks a live directory read-only: manifest parse (footer
// included), every tier's shape and checksums, and a WAL scan that reports
// — but does not truncate — a torn tail.
func verifyLiveDir(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{Path: dir, Kind: "live"}
	buf, err := os.ReadFile(filepath.Join(dir, liveManifestName))
	if err != nil {
		return nil, err
	}
	m, err := parseLiveManifest(buf)
	if err != nil {
		rep.problem("manifest %s: %v", liveManifestName, err)
		return rep, nil
	}
	rep.note("manifest: %d tiers, next id %d", len(m.tiers), m.nextID)
	for _, mt := range m.tiers {
		q, err := OpenIndex(filepath.Join(dir, mt.file))
		if err != nil {
			rep.problem("tier %s: %v", mt.file, err)
			continue
		}
		idx, ok := q.(*Index)
		switch {
		case !ok:
			rep.problem("tier %s: not a monolithic index", mt.file)
		case idx.NumDocs() != len(mt.ids):
			rep.problem("tier %s: holds %d documents, manifest says %d", mt.file, idx.NumDocs(), len(mt.ids))
		default:
			if err := idx.VerifyChecksums(); err != nil {
				rep.problem("tier %s: %v", mt.file, err)
			} else {
				rep.note("tier %s: %d documents, checksums verified", mt.file, idx.NumDocs())
			}
		}
		q.Close()
	}
	wbuf, err := os.ReadFile(filepath.Join(dir, walName))
	switch {
	case os.IsNotExist(err):
		rep.note("no WAL present")
	case err != nil:
		rep.problem("wal: %v", err)
	default:
		var recs int
		valid := walScan(wbuf, func(walRecord) bool { recs++; return true })
		if tail := int64(len(wbuf)) - valid; tail > 0 {
			// A torn tail is the expected artifact of a crash mid-append:
			// replay drops it, losing only the never-acknowledged record.
			rep.note("wal: %d valid records (%d bytes); %d-byte torn tail will be dropped at the next open", recs, valid, tail)
		} else {
			rep.note("wal: %d records, all valid", recs)
		}
	}
	return rep, nil
}
