// Command era-bench regenerates the tables and figures of the ERA paper's
// evaluation (§6) on deterministic synthetic workloads.
//
// Usage:
//
//	era-bench -list
//	era-bench -exp fig10a
//	era-bench -exp all -scale medium
//
// Times are virtual (a deterministic disk/cluster cost model prices the
// real counted work), so output is machine-independent; see EXPERIMENTS.md
// for the comparison against the paper's reported results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"era/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.String("scale", "small", "workload scale: small, medium or large")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-11s %s\n", "ID", "PAPER", "TITLE")
		for _, e := range bench.All {
			fmt.Printf("%-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	fmt.Printf("scale=%s (1 paper-GB = %d symbols)\n\n", sc.Name, sc.Unit)
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run(sc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "era-bench:", err)
	os.Exit(1)
}
