package core

import (
	"fmt"

	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// This file implements ERa-str (§4.2.1): Algorithm ComputeSuffixSubTree with
// the optimized iterative BranchEdge. The sub-tree is built level by level
// directly in the node structure — every round extends or branches the open
// edges in place, which costs random memory accesses per update (the paper's
// stated reason for superseding it with SubTreePrepare/BuildSubTree, §4.2.2).
// It is kept as a first-class builder because Fig. 7 compares the two.
//
// Chunk state is a flat per-sub-tree slice indexed by occurrence appearance
// rank (each open edge carries its occurrences' ranks), so the innermost
// symbol-comparison loop costs one array index instead of a hash-map probe;
// the chunk bytes live in a per-round arena and the round's fill schedule is
// a k-way merge of the per-edge appearance-ordered runs.

// openEdge is an edge still under construction: all suffixes in occs pass
// through node's edge end at string depth depth. ranks[k] is the appearance
// rank of occs[k] within its sub-tree — the index of its chunk.
type openEdge struct {
	node  int32
	occs  []int32
	ranks []int32
	depth int32 // symbols of each suffix consumed so far
}

// strState is the ERa-str working state for one sub-tree of a group.
type strState struct {
	prefix Prefix
	tree   *suffixtree.Tree
	open   []openEdge
	// spare is last round's consumed open list, reused as the next round's
	// append target. The two buffers alternate: re-queued edges must never
	// land in the array still being iterated (edges would be clobbered and
	// duplicated mid-round, silently corrupting the sub-tree).
	spare  []openEdge
	active int      // total occurrences on open edges
	chunks [][]byte // appearance rank → this round's chunk

	// processEdge scratch, reused across rounds.
	stack     []branchJob
	occTmp    []int32
	rankTmp   []int32
	symCounts [256]int32
	symStarts [256]int32
	symList   []byte
}

// branchJob is one pending stretch of BranchEdge work within processEdge.
type branchJob struct {
	node     int32
	occs     []int32
	ranks    []int32
	depth    int32 // suffix depth at the node's edge end
	consumed int32 // symbols of this round's chunk already used
}

// GroupBranch builds every sub-tree of a virtual tree with the ERa-str
// method, sharing each scan of S across the whole group exactly like
// GroupPrepare. Chunks of `range` symbols per unresolved suffix are fetched
// per round (optimizations 1–3 of §4.2.1); the occurrence-collection scan
// doubles as round one. A non-nil ctx supplies the shared round-loop scratch
// (see GroupPrepare).
func GroupBranch(ctx *buildContext, f *seq.File, view seq.String, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel,
	group Group, rCap int64, staticRange int) ([]*suffixtree.Tree, PrepareStats, error) {

	if ctx == nil {
		ctx = new(buildContext)
	}
	n := f.Len()
	stats := PrepareStats{MinRange: int(^uint(0) >> 1)}

	rng1 := roundRange(rCap, staticRange, activeUpfront(group), n)
	occs, round1, captured, err := CollectWithFill(ctx, f, sc, clock, model, group, rng1)
	if err != nil {
		return nil, stats, err
	}
	stats.SymbolsRead += captured

	subs := make([]*strState, len(group.Prefixes))
	for i, p := range group.Prefixes {
		if len(occs[i]) == 0 {
			return nil, stats, fmt.Errorf("core: prefix %q has no occurrences", p.Label)
		}
		t := suffixtree.New(view)
		st := &strState{prefix: p, tree: t}
		plen := int32(len(p.Label))
		first := occs[i][0]
		if int(first)+len(p.Label) == n {
			// The prefix label itself ends with the terminator (p$ or the
			// trivial T$ sub-tree): a single leaf, complete immediately.
			leaf := t.NewNode(first, int32(n), first)
			t.AttachLast(t.Root(), leaf)
		} else {
			u := t.NewNode(first, first+plen, -1)
			t.AttachLast(t.Root(), u)
			ranks := make([]int32, len(occs[i]))
			for r := range ranks {
				ranks[r] = int32(r)
			}
			st.open = append(st.open, openEdge{node: u, occs: occs[i], ranks: ranks, depth: plen})
			st.active = len(occs[i])
		}
		subs[i] = st
	}

	var cpuSeq, cpuRand int64

	// Round-loop scratch, reused every round (and across groups via the
	// context). For this builder a fillReq's idx is the occurrence's
	// appearance rank, which identifies the chunk slot.
	fills, heap, reqs := ctx.fills, ctx.heap, ctx.reqs
	chunkArena := &ctx.roundArena
	defer func() { ctx.fills, ctx.heap, ctx.reqs = fills[:0], heap[:0], reqs }()
	firstRound := true

	for {
		activeTotal := 0
		for _, st := range subs {
			activeTotal += st.active
		}
		if activeTotal == 0 {
			break
		}
		var rng int
		if firstRound {
			rng = rng1
		} else {
			rng = roundRange(rCap, staticRange, activeTotal, n)
		}
		if rng < stats.MinRange {
			stats.MinRange = rng
		}
		if rng > stats.MaxRange {
			stats.MaxRange = rng
		}
		stats.Rounds++

		if firstRound {
			// Round one uses the chunks captured by the collect scan, which
			// arrive already indexed by appearance rank.
			firstRound = false
			for si := range subs {
				subs[si].chunks = round1[si]
			}
		} else {
			// One sequential pass fetches the next chunk for every
			// unresolved suffix of every sub-tree in the group. Every open
			// edge's occurrences are in appearance order, so the schedule
			// is a k-way merge of per-edge runs.
			fills = fills[:0]
			heap = heap[:0]
			for si, st := range subs {
				for ei, oe := range st.open {
					if len(oe.occs) > 0 {
						heap = append(heap, mergeHead{pos: int(oe.occs[0]) + int(oe.depth), sub: int32(si), a: int32(ei)})
					}
				}
			}
			heap.init()
			for len(heap) > 0 {
				hd := heap[0]
				oe := &subs[hd.sub].open[hd.a]
				fills = append(fills, fillReq{hd.pos, hd.sub, oe.ranks[hd.b]})
				if nb := hd.b + 1; int(nb) < len(oe.occs) {
					heap.replaceMin(mergeHead{pos: int(oe.occs[nb]) + int(oe.depth), sub: hd.sub, a: hd.a, b: nb})
				} else {
					heap = heap.popMin()
				}
			}
			cpuSeq += int64(len(fills))

			total := 0
			for _, fl := range fills {
				want := rng
				if fl.pos+want > n {
					want = n - fl.pos
				}
				if want <= 0 {
					// The suffix is exhausted; this cannot happen for an
					// open edge (the unique terminator forces divergence
					// before the suffix ends).
					return nil, stats, fmt.Errorf("core: open edge of %q exhausted at %d (string length %d)", subs[fl.sub].prefix.Label, fl.pos, n)
				}
				total += want
			}
			chunkArena.reset()
			chunkArena.ensure(total)
			reqs = seq.GrowBatch(reqs, len(fills))
			for i, fl := range fills {
				want := rng
				if fl.pos+want > n {
					want = n - fl.pos
				}
				reqs[i] = seq.BatchRequest{Off: fl.pos, Dst: chunkArena.grab(want)}
			}
			sc.Reset()
			if err := sc.FetchBatch(reqs); err != nil {
				return nil, stats, err
			}
			for i, fl := range fills {
				subs[fl.sub].chunks[fl.idx] = reqs[i].Dst[:reqs[i].Got]
				stats.SymbolsRead += int64(reqs[i].Got)
			}
		}

		// Process every open edge against its chunks. All of this phase's
		// work runs against the partial tree and per-edge chunk state —
		// the non-sequential, non-local memory accesses that §4.2.2 calls
		// out as ERa-str's bottleneck — so the whole of it is charged at
		// the random-access rate.
		for _, st := range subs {
			open := st.open
			st.open = st.spare[:0]
			st.spare = open
			st.active = 0
			for _, oe := range open {
				seqOps, randOps, err := st.processEdge(oe, int32(n))
				if err != nil {
					return nil, stats, err
				}
				cpuSeq += seqOps
				cpuRand += randOps
			}
		}
		clock.Advance(model.RandomCPUTime(cpuSeq + cpuRand))
		cpuSeq, cpuRand = 0, 0
	}

	trees := make([]*suffixtree.Tree, len(subs))
	for i, st := range subs {
		trees[i] = st.tree
	}
	if stats.MinRange > stats.MaxRange {
		stats.MinRange = 0
	}
	return trees, stats, nil
}

// processEdge consumes this round's chunks along one open edge: the edge is
// extended over the symbols every suffix shares (Proposition 1 case 2), then
// branched where they diverge (case 3); singleton branches become leaves
// (case 1). Unresolved branches are re-queued for the next round. Tree
// mutations are counted as random-access operations, symbol comparisons as
// sequential ones.
func (st *strState) processEdge(oe openEdge, n int32) (seqOps, randOps int64, err error) {
	t := st.tree
	chunks := st.chunks
	stack := append(st.stack[:0], branchJob{oe.node, oe.occs, oe.ranks, oe.depth, 0})

	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if len(j.occs) == 1 {
			// Leaf (Proposition 1 case 1): extend the edge to the
			// terminator and label with the suffix offset.
			t.SetEdgeEnd(j.node, n)
			t.SetSuffix(j.node, j.occs[0])
			randOps++
			continue
		}

		// Common extension across all suffixes within the fetched window.
		first := chunks[j.ranks[0]]
		limit := int32(len(first)) - j.consumed
		for _, r := range j.ranks[1:] {
			if l := int32(len(chunks[r])) - j.consumed; l < limit {
				limit = l
			}
		}
		var cs int32
		for cs < limit {
			sym := first[j.consumed+cs]
			same := true
			for _, r := range j.ranks[1:] {
				seqOps++
				if chunks[r][j.consumed+cs] != sym {
					same = false
					break
				}
			}
			if !same {
				break
			}
			cs++
		}
		if cs > 0 {
			t.SetEdgeEnd(j.node, t.EdgeEnd(j.node)+cs)
			randOps++
		}
		newDepth := j.depth + cs
		newConsumed := j.consumed + cs

		if cs == limit {
			// Window exhausted with no divergence: stay open.
			st.open = append(st.open, openEdge{node: j.node, occs: j.occs, ranks: j.ranks, depth: newDepth})
			st.active += len(j.occs)
			continue
		}

		// Divergence: stably partition the occurrences in place by their
		// next symbol, so every child is a sub-slice of the parent's
		// occurrence (and rank) storage — no per-branch allocation.
		m := len(j.occs)
		if cap(st.occTmp) < m {
			st.occTmp = make([]int32, m)
			st.rankTmp = make([]int32, m)
		}
		present := st.symList[:0]
		for _, r := range j.ranks {
			sym := chunks[r][newConsumed]
			if st.symCounts[sym] == 0 {
				present = append(present, sym)
			}
			st.symCounts[sym]++
			seqOps++
		}
		for a := 1; a < len(present); a++ {
			for b := a; b > 0 && present[b] < present[b-1]; b-- {
				present[b], present[b-1] = present[b-1], present[b]
			}
		}
		off := int32(0)
		for _, s := range present {
			st.symStarts[s] = off
			st.symCounts[s], off = off, off+st.symCounts[s]
		}
		occTmp := st.occTmp[:m]
		rankTmp := st.rankTmp[:m]
		copy(occTmp, j.occs)
		copy(rankTmp, j.ranks)
		for k := 0; k < m; k++ {
			sym := chunks[rankTmp[k]][newConsumed]
			d := st.symCounts[sym]
			st.symCounts[sym]++
			j.occs[d] = occTmp[k]
			j.ranks[d] = rankTmp[k]
		}
		for ci, s := range present {
			lo := st.symStarts[s]
			hi := int32(m)
			if ci+1 < len(present) {
				hi = st.symStarts[present[ci+1]]
			}
			g, gr := j.occs[lo:hi], j.ranks[lo:hi]
			o := g[0]
			child := t.NewNode(o+newDepth, o+newDepth+1, -1)
			t.AttachLast(j.node, child)
			randOps++
			stack = append(stack, branchJob{child, g, gr, newDepth + 1, newConsumed + 1})
		}
		for _, s := range present {
			st.symCounts[s] = 0
		}
		st.symList = present[:0]
	}
	st.stack = stack[:0]
	return seqOps, randOps, nil
}
