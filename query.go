package era

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"era/internal/suffixtree"
)

// Concurrency: every query method on Index (Contains, Count, Occurrences,
// DocOccurrences, LongestRepeatedSubstring, Repeats, LongestCommonSubstring,
// Batch, WriteTo) is a pure read of the immutable tree and string built by
// Build/BuildCorpus/ReadIndex. Any number of goroutines may query one Index
// concurrently without synchronization; the concurrent query server in
// internal/server relies on this, ShardedIndex's fan-out queries one shard
// Index from a goroutine per shard (shard.go), and TestConcurrentQueries
// pins it under the race detector.

// Contains reports whether pattern occurs in the indexed string — the
// O(|P|) search that motivates suffix trees (§1 of the paper). For corpus
// indexes, matches spanning a document boundary are still reported by
// Contains; use DocOccurrences for per-document semantics.
func (x *Index) Contains(pattern []byte) bool {
	if !x.healthy() {
		return false
	}
	return x.tree.Contains(pattern)
}

// Count returns the number of occurrences of pattern.
func (x *Index) Count(pattern []byte) int {
	if !x.healthy() {
		return 0
	}
	return x.tree.Count(pattern)
}

// Occurrences returns the start offsets of every occurrence of pattern in
// the concatenated input, sorted ascending. A corrupt index surfaces
// ErrCorruptIndex instead of silently answering empty.
func (x *Index) Occurrences(pattern []byte) ([]int, error) {
	if err := x.CheckErr(); err != nil {
		return nil, err
	}
	occ := x.tree.Occurrences(pattern)
	out := make([]int, len(occ))
	for i, o := range occ {
		out[i] = int(o)
	}
	sort.Ints(out)
	return out, nil
}

// OpKind selects the operation a query plan performs.
type OpKind int

const (
	// OpContains answers Answer.Found only.
	OpContains OpKind = iota
	// OpCount fills Answer.Count (and Found).
	OpCount
	// OpOccurrences fills Answer.Occurrences (and Count, Found).
	OpOccurrences
	// OpTopK ranks the K most frequent substrings of length MinLen.
	OpTopK
	// OpLongestRepeat finds the longest substring occurring at least twice.
	OpLongestRepeat
	// OpCommonSubstring finds the longest substring shared by DocA and DocB.
	OpCommonSubstring
	// OpDocFreq aggregates per-document stats for a pattern set.
	OpDocFreq
	// OpMismatch finds pattern occurrences within K symbol mismatches.
	OpMismatch
)

// String returns the wire name of the kind ("contains", "count",
// "occurrences", "topk", "lrs", "lcs", "docfreq", "mismatch"), as used by
// the JSON query API.
func (k OpKind) String() string {
	switch k {
	case OpContains:
		return "contains"
	case OpCount:
		return "count"
	case OpOccurrences:
		return "occurrences"
	case OpTopK:
		return "topk"
	case OpLongestRepeat:
		return "lrs"
	case OpCommonSubstring:
		return "lcs"
	case OpDocFreq:
		return "docfreq"
	case OpMismatch:
		return "mismatch"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// ParseOpKind resolves a wire name to an OpKind.
func ParseOpKind(s string) (OpKind, error) {
	switch s {
	case "contains":
		return OpContains, nil
	case "count":
		return OpCount, nil
	case "occurrences":
		return OpOccurrences, nil
	case "topk":
		return OpTopK, nil
	case "lrs":
		return OpLongestRepeat, nil
	case "lcs":
		return OpCommonSubstring, nil
	case "docfreq":
		return OpDocFreq, nil
	case "mismatch":
		return OpMismatch, nil
	}
	return 0, fmt.Errorf("era: unknown query op %q (want contains, count, occurrences, topk, lrs, lcs, docfreq or mismatch)", s)
}

// Batch answers many queries in one call, amortizing tree descents:
// patterns are processed in lexicographic order and each descent resumes
// from the longest common prefix it shares with its predecessor, so a batch
// of similar or duplicate patterns costs far less than one Find each.
// Results are returned in the order of ops. Like the single-query methods,
// Batch is safe for any number of concurrent callers on one Index. Ops
// landing on the same tree locus share one Occurrences backing array —
// treat returned Occurrences as read-only.
func (x *Index) Batch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 || !x.healthy() {
		return results
	}

	order := make([]int, 0, len(ops))
	maxLen := 0
	for i, op := range ops {
		if op.Kind.IsAnalytic() {
			// Analytics plans dispatch through the per-layer executor; a
			// malformed plan leaves the zero Answer.
			if a, err := x.Analytics(context.Background(), op); err == nil {
				results[i] = a
			}
			continue
		}
		order = append(order, i)
		if len(op.Pattern) > maxLen {
			maxLen = len(op.Pattern)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(ops[order[a]].Pattern, ops[order[b]].Pattern) < 0
	})

	t := x.tree
	trace := make([]suffixtree.Locus, maxLen)
	var prev []byte
	prevMatched := 0
	// Leaf counts and sorted occurrence lists below a locus node are shared
	// by every op that lands on it; memoize them so duplicate
	// Count/Occurrences patterns pay once.
	var counts map[int32]int
	var occLists map[int32][]int

	for _, oi := range order {
		op := &ops[oi]
		p := op.Pattern

		// Longest prefix shared with the previous pattern whose trace is
		// still valid (a failed match only vouches for its matched part).
		l := lcp(p, prev)
		if l > prevMatched {
			l = prevMatched
		}
		matched := t.MatchTrace(p, l, trace)
		prev, prevMatched = p, matched

		if matched != len(p) {
			continue // results[oi] stays the zero Result: not found
		}
		loc := suffixtree.Locus{Node: t.Root()}
		if len(p) > 0 {
			loc = trace[len(p)-1]
		}
		r := &results[oi]
		r.Found = true
		if op.Kind == OpContains {
			continue
		}
		if counts == nil {
			counts = make(map[int32]int)
		}
		c, ok := counts[loc.Node]
		if !ok {
			c = t.CountLeaves(loc.Node)
			counts[loc.Node] = c
		}
		r.Count = c
		if op.Kind == OpOccurrences {
			if occLists == nil {
				occLists = make(map[int32][]int)
			}
			out, ok := occLists[loc.Node]
			if !ok {
				occ := t.Leaves(loc.Node)
				out = make([]int, len(occ))
				for i, o := range occ {
					out[i] = int(o)
				}
				sort.Ints(out)
				occLists[loc.Node] = out
			}
			// The memoized slice is shared across results; ops only ever
			// re-slice it, so every result views the same backing array.
			if op.MaxOccurrences > 0 && len(out) > op.MaxOccurrences {
				out = out[:op.MaxOccurrences]
			}
			r.Occurrences = out
		}
	}
	return results
}

// lcp returns the length of the longest common prefix of a and b.
func lcp(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// DocHit locates a pattern occurrence within a document.
type DocHit struct {
	Doc    int // document index as passed to BuildCorpus
	Offset int // offset within that document
}

// DocOccurrences returns the per-document occurrences of pattern, excluding
// matches that cross document boundaries (the standard generalized suffix
// tree discipline when documents are concatenated without separators). A
// corrupt index surfaces ErrCorruptIndex instead of silently answering empty.
func (x *Index) DocOccurrences(pattern []byte) ([]DocHit, error) {
	if err := x.CheckErr(); err != nil {
		return nil, err
	}
	occ := x.tree.Occurrences(pattern)
	hits := make([]DocHit, 0, len(occ))
	for _, o := range occ {
		if o >= x.docEnds[len(x.docEnds)-1] {
			continue // the terminator's own suffix
		}
		doc, start := x.docOf(o)
		if int(o)+len(pattern) <= int(x.docEnds[doc]) {
			hits = append(hits, DocHit{Doc: doc, Offset: int(o) - start})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Doc != hits[j].Doc {
			return hits[i].Doc < hits[j].Doc
		}
		return hits[i].Offset < hits[j].Offset
	})
	return hits, nil
}

// docOf returns the document containing absolute offset o and the
// document's start offset.
func (x *Index) docOf(o int32) (int, int) {
	d := sort.Search(len(x.docEnds), func(i int) bool { return x.docEnds[i] > o })
	start := 0
	if d > 0 {
		start = int(x.docEnds[d-1])
	}
	return d, start
}

// LongestRepeatedSubstring returns the longest substring occurring at least
// twice, with its occurrence offsets.
func (x *Index) LongestRepeatedSubstring() ([]byte, []int) {
	if !x.healthy() {
		return nil, []int{}
	}
	lbl, occ := x.tree.LongestRepeatedSubstring()
	out := make([]int, len(occ))
	for i, o := range occ {
		out[i] = int(o)
	}
	sort.Ints(out)
	return lbl, out
}

// Repeat is a repeated substring found by Repeats.
type Repeat struct {
	Pattern     []byte
	Occurrences []int
}

// Repeats enumerates maximal repeated substrings of length ≥ minLen that
// occur at least minOcc times, longest first. Each reported repeat is
// right-maximal (extending it by one symbol loses occurrences). This powers
// the time-series motif discovery example (the paper's §1 motivates suffix
// trees for exactly such periodicity mining [15]).
func (x *Index) Repeats(minLen, minOcc int) []Repeat {
	if !x.healthy() {
		return nil
	}
	var out []Repeat
	x.tree.MaximalRepeats(int32(minLen), minOcc, func(node int32, depth int32, occ int) bool {
		label := x.tree.PathLabel(node)
		leaves := x.tree.Leaves(node)
		positions := make([]int, len(leaves))
		for i, l := range leaves {
			positions[i] = int(l)
		}
		sort.Ints(positions)
		out = append(out, Repeat{Pattern: label, Occurrences: positions})
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Pattern) > len(out[j].Pattern) })
	return out
}

// LongestCommonSubstring returns the longest substring common to documents
// a and b of a corpus index, with one occurrence offset in each. Crossing
// matches are excluded. Corpus indexes with more than 64 documents are not
// supported by this query.
func (x *Index) LongestCommonSubstring(a, b int) ([]byte, int, int, error) {
	if len(x.docEnds) > 64 {
		return nil, 0, 0, fmt.Errorf("era: LongestCommonSubstring supports at most 64 documents, corpus has %d", len(x.docEnds))
	}
	if a < 0 || a >= len(x.docEnds) || b < 0 || b >= len(x.docEnds) {
		return nil, 0, 0, fmt.Errorf("era: document index out of range")
	}
	if err := x.CheckErr(); err != nil {
		return nil, 0, 0, err
	}
	best, bestDepth := int32(-1), int32(0)
	x.walkDocSlacks(func(node, depth int32, slack []int32) {
		if depth > bestDepth && slack[a] >= depth && slack[b] >= depth {
			best, bestDepth = node, depth
		}
	})
	if best < 0 {
		return nil, 0, 0, nil
	}
	label := x.tree.PathLabel(best)
	offA, offB := -1, -1
	for _, l := range x.tree.Leaves(best) {
		doc, start := x.docOf(l)
		if int(l)+len(label) > int(x.docEnds[doc]) {
			continue
		}
		if doc == a && offA < 0 {
			offA = int(l) - start
		}
		if doc == b && offB < 0 {
			offB = int(l) - start
		}
	}
	return label, offA, offB, nil
}

// walkDocSlacks computes, for every internal node and document d, the
// largest path depth at which the node still has a non-crossing occurrence
// in d ("slack": max over its leaves in d of docEnd − leafOffset; −1 when d
// has no leaf below). A node's path label occurs inside document d exactly
// when its depth ≤ slack[d]. fn is invoked post-order on internal nodes.
// Traversal goes through the layout-agnostic ForEachChild, so it runs
// unmodified over the heap tree and the mapped flat layout.
func (x *Index) walkDocSlacks(fn func(node, depth int32, slack []int32)) {
	t := x.tree
	nd := len(x.docEnds)
	type frame struct {
		id      int32
		depth   int32
		visited bool
	}
	slacks := make(map[int32][]int32)
	stack := []frame{{t.Root(), 0, false}}
	// A valid tree pops each node twice (pre + post). A corrupt flat layout
	// can encode overlapping child runs (a DAG), which would re-expand
	// shared subtrees exponentially; the budget keeps the walk linear —
	// wrong answers on a corrupt file are acceptable, runaway walks are not.
	budget := 2 * t.NumNodes()
	for len(stack) > 0 && budget > 0 {
		budget--
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.visited {
			stack = append(stack, frame{f.id, f.depth, true})
			t.ForEachChild(f.id, func(c int32) bool {
				stack = append(stack, frame{c, f.depth + t.EdgeLen(c), false})
				return true
			})
			continue
		}
		s := make([]int32, nd)
		for i := range s {
			s[i] = -1
		}
		if t.IsLeaf(f.id) {
			if o := t.Suffix(f.id); o >= 0 && o < x.docEnds[nd-1] {
				doc, _ := x.docOf(o)
				s[doc] = x.docEnds[doc] - o
			}
		} else {
			t.ForEachChild(f.id, func(c int32) bool {
				cs := slacks[c]
				if cs == nil {
					return true // corrupt flat layout: child never visited
				}
				for i := range s {
					if cs[i] > s[i] {
						s[i] = cs[i]
					}
				}
				delete(slacks, c)
				return true
			})
			fn(f.id, f.depth, s)
		}
		slacks[f.id] = s
	}
}
