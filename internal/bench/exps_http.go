package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"era"
	"era/internal/server"
	"era/internal/workload"
)

// HTTPQClients is the concurrency sweep of the "httpq" experiment.
var HTTPQClients = []int{1, 4, 16}

// RunHTTPQ is the end-to-end serving benchmark the ROADMAP asked for next
// to shardq: where shardq times the in-process engine, httpq drives the
// real `era serve` stack — JSON decode, engine batch, JSON encode — over
// HTTP with N concurrent clients, once against a heap-loaded (v2) index
// and once against the same corpus memory-mapped from a v4 file. The wall
// cells are the time for a fixed request volume (lower is better); derived
// throughput goes to the notes so the regression gate sees only
// wall-semantic cells.
func RunHTTPQ(s Scale) (*Table, error) {
	t := &Table{ID: "httpq", Paper: "§1 (serving)", Title: "HTTP queries under N clients: heap (v2) vs mmap (v4) serving; English text",
		Header: []string{"clients", "wall-heap(ms)", "wall-mmap(ms)", "identical"}}

	n := s.GB(2)
	data, err := workload.Generate(workload.English, n, 16007)
	if err != nil {
		return nil, err
	}
	data = data[:len(data)-1]
	docs, err := workload.SliceDocs(data, 64)
	if err != nil {
		return nil, err
	}
	idx, err := era.BuildCorpus(docs, nil)
	if err != nil {
		return nil, err
	}
	idx.SetName("httpq")

	dir, err := os.MkdirTemp("", "era-httpq")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v2Path := filepath.Join(dir, "httpq-v2.idx")
	v4Path := filepath.Join(dir, "httpq-v4.idx")
	if err := idx.WriteFile(v2Path); err != nil {
		return nil, err
	}
	if err := era.WriteFileV4(v4Path, idx); err != nil {
		return nil, err
	}

	// One engine+server per layout. Caches are disabled so the cells
	// measure the layouts, not the result cache in front of them.
	openServer := func(path string) (*server.Engine, *httptest.Server, error) {
		eng := server.NewEngine(0)
		if _, err := eng.LoadFile(path); err != nil {
			return nil, nil, err
		}
		return eng, httptest.NewServer(server.NewHandler(eng)), nil
	}
	heapEng, heapSrv, err := openServer(v2Path)
	if err != nil {
		return nil, err
	}
	defer func() { heapSrv.Close(); heapEng.Close() }()
	mmapEng, mmapSrv, err := openServer(v4Path)
	if err != nil {
		return nil, err
	}
	defer func() { mmapSrv.Close(); mmapEng.Close() }()

	// The request set: batches of mixed ops over deterministic corpus
	// substrings and misses; every client replays the same bodies.
	const batchSize, batches = 32, 12
	bodies := make([][]byte, batches)
	for b := range bodies {
		ops := make([]map[string]any, batchSize)
		for i := range ops {
			k := b*batchSize + i
			off := (k * 1511) % (len(data) - 24)
			p := string(data[off : off+3+k%10])
			switch k % 3 {
			case 0:
				ops[i] = map[string]any{"op": "contains", "pattern": p}
			case 1:
				ops[i] = map[string]any{"op": "count", "pattern": p}
			default:
				ops[i] = map[string]any{"op": "occurrences", "pattern": p, "max": 8}
			}
		}
		body, err := json.Marshal(map[string]any{"index": "httpq", "ops": ops})
		if err != nil {
			return nil, err
		}
		bodies[b] = body
	}

	post := func(client *http.Client, url string, body []byte) ([]byte, error) {
		res, err := client.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer res.Body.Close()
		out, err := io.ReadAll(res.Body)
		if err != nil {
			return nil, err
		}
		if res.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("httpq: status %d: %s", res.StatusCode, out)
		}
		return out, nil
	}

	// Answers must be identical across layouts before anything is timed.
	chk := http.DefaultClient
	for _, body := range bodies {
		a, err := post(chk, heapSrv.URL, body)
		if err != nil {
			return nil, err
		}
		b, err := post(chk, mmapSrv.URL, body)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(a, b) {
			return nil, fmt.Errorf("httpq: heap and mmap servers answered differently")
		}
	}

	const reqsPerClient = 40
	sweep := func(url string, clients int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				client := &http.Client{}
				for r := 0; r < reqsPerClient; r++ {
					if _, err := post(client, url, bodies[(seed+r)%len(bodies)]); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	for _, clients := range HTTPQClients {
		heapWall, err := sweep(heapSrv.URL, clients)
		if err != nil {
			return nil, err
		}
		mmapWall, err := sweep(mmapSrv.URL, clients)
		if err != nil {
			return nil, err
		}
		ops := clients * reqsPerClient * batchSize
		t.AddRow(itoa(clients), ms(heapWall), ms(mmapWall), "yes")
		t.Notes = append(t.Notes, fmt.Sprintf("%d clients: %d ops — heap %.1f kq/s, mmap %.1f kq/s",
			clients, ops, float64(ops)/heapWall.Seconds()/1000, float64(ops)/mmapWall.Seconds()/1000))
	}
	t.Notes = append(t.Notes,
		"wall cells time a fixed request volume over real HTTP (JSON decode + engine + encode), result cache disabled",
		fmt.Sprintf("requests: %d clients × %d batches of %d ops; identical = both layouts returned byte-equal HTTP bodies", HTTPQClients[len(HTTPQClients)-1], reqsPerClient, batchSize))
	return t, nil
}
