// Package route is the fault-tolerant serving tier over `era serve`
// replicas: consistent-hash shard placement, active health checking,
// retries with jittered backoff, hedged reads, stitch-aware merging, and
// explicit partial-answer degradation. It complements the sibling package
// cluster (the §5 shared-nothing construction simulation): cluster builds
// indexes across nodes, route serves them.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"era"
	"era/internal/server"
)

// Router serves a sharded corpus from per-shard monolithic indexes hosted
// on `era serve` replicas, answering byte-identically to one big index.
// Placement is a consistent-hash ring with virtual nodes: each shard's
// replica set is the first Replication distinct nodes clockwise from the
// shard name's hash, so adding a replica moves only the shards on the arcs
// it gains. Per-shard sub-queries carry per-attempt deadlines, retry with
// full-jitter backoff across the surviving owners, and optionally hedge
// the first attempt; answers merge with the same boundary-stitch logic the
// in-process ShardedIndex uses (era.Stitch and friends), so
// junction-crossing matches are never lost.
//
// Degradation is explicit: when every replica of a shard is unreachable
// the router answers from the surviving shards with "partial": true — or
// refuses with 503 in strict mode — instead of hanging, erroring the whole
// request, or silently returning a wrong answer dressed up as a complete
// one.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	topo    atomic.Pointer[topology]
	healthy *Health

	requests  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	partials  atomic.Int64
	shardDown atomic.Int64 // sub-queries that exhausted every replica
}

// RouterConfig tunes a Router; zero values take the documented defaults.
type RouterConfig struct {
	// Replicas are the base URLs of the `era serve` processes.
	Replicas []string
	// Corpus names the shard family to serve ("x" serves shards "x~0",
	// "x~1", ...). Empty auto-detects, requiring exactly one family.
	Corpus string
	// Replication is how many replicas each shard is placed on (default 2,
	// capped at len(Replicas)).
	Replication int
	// VNodes is the virtual-node count per replica on the ring (default 64).
	VNodes int
	// Timeout bounds one client request end to end (default 10s).
	Timeout time.Duration
	// AttemptTimeout bounds one sub-request attempt against one replica
	// (default Timeout / (Retries+2), so the retry budget fits the request
	// deadline). It applies to cheap sub-requests — membership queries,
	// content slices — where abandoning a slow replica for a retry is
	// cheaper than waiting. Expensive analytics sub-requests (a depth-L
	// census, a full-shard walk) legitimately run for seconds, so they get
	// the full remaining request budget per attempt instead: retrying those
	// on a deadline would abandon working replicas and resubmit the same
	// heavy work, a self-amplifying overload. Their retries still fire on
	// fast failures (refused connections, 5xx, torn bodies).
	AttemptTimeout time.Duration
	// Retries is how many additional attempts a failed sub-request gets
	// (default 2). Client errors (4xx) never retry — they are deterministic.
	Retries int
	// HedgeDelay, when > 0, launches a second copy of a sub-request's first
	// attempt against the next owner if the primary hasn't answered within
	// the delay; the first success wins. Bounds tail latency at the cost of
	// duplicate work.
	HedgeDelay time.Duration
	// Strict refuses degraded answers: a shard with no reachable replica
	// fails the request with 503 instead of flagging "partial": true.
	Strict bool
	// MaxPattern is the junction-window half-width prefetched at Refresh
	// (default 64): crossing scans for patterns up to this length are
	// served from cache without touching replicas. Longer patterns fall
	// back to live fetches.
	MaxPattern int
	// Backoff jitters the sleep between retry attempts; the zero value
	// defaults to base 10ms, cap 250ms.
	Backoff Backoff
	// Health gates candidate selection; nil constructs a checker over
	// Replicas (start it with Router.Health().Start()).
	Health *Health
	// Client issues the sub-requests; nil uses http.DefaultClient.
	Client *http.Client
	// ErrLog receives routing failures; nil uses the process logger.
	ErrLog *log.Logger
}

// shardInfo is one shard of the served corpus with its global placement.
type shardInfo struct {
	Name     string
	Symbols  int // indexed length incl. terminator
	Docs     int
	OffStart int // global content offset of the shard's first byte
	DocStart int // global ordinal of the shard's first document
	Owners   []string
}

// topology is an immutable snapshot of the discovered shard layout;
// refreshes swap the pointer.
type topology struct {
	corpus   string
	shards   []shardInfo
	totalLen int // content + the single virtual terminator
	numDocs  int
	bounds   []int // interior junction offsets, ascending

	// winCache holds the junction windows prefetched at refresh: winCache[j]
	// covers global [winLo[j], winLo[j]+len(winCache[j])) around bounds[j].
	winLo    []int
	winCache [][]byte
}

// NewRouter builds a router over the replica set; call Refresh before
// serving to discover the shard topology.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Replicas) {
		cfg.Replication = len(cfg.Replicas)
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = cfg.Timeout / time.Duration(cfg.Retries+2)
	}
	if cfg.MaxPattern <= 0 {
		cfg.MaxPattern = 64
	}
	if cfg.Backoff.Base <= 0 {
		cfg.Backoff = Backoff{Base: 10 * time.Millisecond, Cap: 250 * time.Millisecond, Rand: cfg.Backoff.Rand}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	ring := NewRing(cfg.VNodes)
	for _, r := range cfg.Replicas {
		ring.Add(r)
	}
	h := cfg.Health
	if h == nil {
		h = NewHealth(cfg.Replicas)
		h.Client = cfg.Client
	}
	return &Router{cfg: cfg, ring: ring, healthy: h}, nil
}

// Health exposes the router's checker so callers can start its background
// loop (and tests can drive it synchronously).
func (rt *Router) Health() *Health { return rt.healthy }

// Placement returns shard name → replica set for the current topology;
// provisioning tooling uses it to decide which replica loads which shard
// files.
func (rt *Router) Placement() map[string][]string {
	topo := rt.topo.Load()
	if topo == nil {
		return nil
	}
	out := make(map[string][]string, len(topo.shards))
	for _, sh := range topo.shards {
		out[sh.Name] = append([]string(nil), sh.Owners...)
	}
	return out
}

// Refresh discovers the shard topology: it lists /v1/indexes on the
// replicas, groups names of the form "corpus~N", verifies the family is
// contiguous from 0, computes each shard's global offsets, assigns owners
// from the ring, and prefetches the junction stitch windows. Serving
// continues on the previous topology until the swap at the end.
func (rt *Router) Refresh(ctx context.Context) error {
	var infos []wireIndexInfo
	var lastErr error
	for _, base := range rt.cfg.Replicas {
		var listing struct {
			Indexes []wireIndexInfo `json:"indexes"`
		}
		err := rt.doJSON(ctx, []string{base}, false, http.MethodGet, "/v1/indexes", nil, &listing)
		if err != nil {
			lastErr = err
			continue
		}
		infos = listing.Indexes
		lastErr = nil
		break
	}
	if lastErr != nil {
		return fmt.Errorf("cluster: topology discovery failed on every replica: %w", lastErr)
	}

	byFamily := map[string]map[int]wireIndexInfo{}
	for _, info := range infos {
		tilde := strings.LastIndexByte(info.Name, '~')
		if tilde < 1 {
			continue
		}
		n, err := strconv.Atoi(info.Name[tilde+1:])
		if err != nil || n < 0 {
			continue
		}
		fam := info.Name[:tilde]
		if byFamily[fam] == nil {
			byFamily[fam] = map[int]wireIndexInfo{}
		}
		byFamily[fam][n] = info
	}
	corpus := rt.cfg.Corpus
	if corpus == "" {
		if len(byFamily) != 1 {
			return fmt.Errorf("cluster: found %d shard families, need -corpus to pick one", len(byFamily))
		}
		for fam := range byFamily {
			corpus = fam
		}
	}
	family := byFamily[corpus]
	if len(family) == 0 {
		return fmt.Errorf("cluster: no shards named %s~N on the replicas", corpus)
	}

	topo := &topology{corpus: corpus}
	for i := 0; i < len(family); i++ {
		info, ok := family[i]
		if !ok {
			return fmt.Errorf("cluster: shard family %s has %d members but %s~%d is missing", corpus, len(family), corpus, i)
		}
		if info.Symbols < 1 {
			return fmt.Errorf("cluster: shard %s reports %d symbols", info.Name, info.Symbols)
		}
		sh := shardInfo{
			Name:     info.Name,
			Symbols:  info.Symbols,
			Docs:     info.Documents,
			OffStart: topo.totalLen,
			DocStart: topo.numDocs,
			Owners:   rt.ring.Owners(info.Name, rt.cfg.Replication),
		}
		topo.shards = append(topo.shards, sh)
		topo.totalLen += info.Symbols - 1 // per-shard terminators are not global bytes
		topo.numDocs += info.Documents
	}
	topo.totalLen++ // the single virtual terminator
	for _, sh := range topo.shards[1:] {
		topo.bounds = append(topo.bounds, sh.OffStart)
	}

	// Prefetch junction windows up to the MaxPattern half-width; a failure
	// here is tolerable (live fetches cover it), so errors only log.
	for _, b := range topo.bounds {
		lo, hi := b-rt.cfg.MaxPattern+1, b+rt.cfg.MaxPattern-1
		if lo < 0 {
			lo = 0
		}
		if hi > topo.totalLen {
			hi = topo.totalLen
		}
		win, err := rt.globalSlice(ctx, topo, lo, hi)
		if err != nil {
			rt.logf("cluster: prefetching junction window at %d: %v", b, err)
			topo.winLo = append(topo.winLo, -1)
			topo.winCache = append(topo.winCache, nil)
			continue
		}
		topo.winLo = append(topo.winLo, lo)
		topo.winCache = append(topo.winCache, win)
	}

	rt.topo.Store(topo)
	return nil
}

// wireIndexInfo is the subset of the replica /v1/indexes entry the router
// needs.
type wireIndexInfo struct {
	Name      string `json:"name"`
	Symbols   int    `json:"symbols"`
	Documents int    `json:"documents"`
}

// ---------------------------------------------------------------------------
// Sub-request plumbing: candidate selection, retries, hedging.

// routeError is an HTTP-level failure from a replica (or synthesized by the
// router); transport failures travel as ordinary errors.
type routeError struct {
	status int
	msg    string
}

func (e *routeError) Error() string { return e.msg }

// clientErr reports a deterministic client error (4xx): retrying it on
// another replica cannot change the answer.
func clientErr(err error) bool {
	var re *routeError
	return errors.As(err, &re) && re.status >= 400 && re.status < 500
}

// candidates orders a shard's owners for attempting: healthy owners first
// (in ring preference order), ejected ones after — if the checker has
// ejected everyone, the requests themselves get to discover a recovery.
func (rt *Router) candidates(owners []string) []string {
	out := make([]string, 0, len(owners))
	var down []string
	for _, o := range owners {
		if rt.healthy.Healthy(o) {
			out = append(out, o)
		} else {
			down = append(down, o)
		}
	}
	return append(out, down...)
}

// doShard runs one sub-request against a shard's replica set: per-attempt
// deadlines, full-jitter backoff between retries, an optional hedged first
// attempt, ejection feedback to the health checker, and fail-fast on 4xx.
// decode consumes a 2xx body; its error counts as a failed attempt (a torn
// or truncated body is a network fault, not an answer). heavy marks an
// expensive sub-request whose attempts run under the full remaining request
// budget instead of AttemptTimeout (see RouterConfig.AttemptTimeout).
func (rt *Router) doShard(ctx context.Context, owners []string, heavy bool, build func(base string) (*http.Request, error), decode func(body []byte) error) error {
	cands := rt.candidates(owners)
	if len(cands) == 0 {
		return fmt.Errorf("cluster: no replicas")
	}
	attempts := rt.cfg.Retries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := cands[attempt%len(cands)]
		var err error
		if attempt == 0 && rt.cfg.HedgeDelay > 0 && len(cands) > 1 {
			err = rt.hedged(ctx, base, cands[1], heavy, build, decode)
		} else {
			err = rt.attempt(ctx, base, heavy, build, decode)
		}
		if err == nil {
			return nil
		}
		if clientErr(err) {
			return err
		}
		lastErr = err
		if attempt+1 < attempts {
			rt.retries.Add(1)
			select {
			case <-time.After(rt.cfg.Backoff.Delay(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	rt.shardDown.Add(1)
	rt.logf("cluster: sub-request failed after %d attempts: %v", attempts, lastErr)
	return lastErr
}

// attempt is one bounded round trip to one replica, reporting the outcome
// to the health checker. 4xx statuses are surfaced as routeErrors and count
// as replica-healthy (the replica answered; the request was wrong).
func (rt *Router) attempt(ctx context.Context, base string, heavy bool, build func(base string) (*http.Request, error), decode func(body []byte) error) error {
	if !heavy {
		// Heavy sub-requests keep the caller's deadline: the end-to-end
		// budget already bounds them, and a tighter per-attempt cutoff would
		// abandon a replica mid-census just to resubmit the same work.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := build(base)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		rt.healthy.Report(base, false)
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rt.healthy.Report(base, false)
		return fmt.Errorf("cluster: reading %s response: %w", base, err)
	}
	if resp.StatusCode >= 500 {
		rt.healthy.Report(base, false)
		return &routeError{status: resp.StatusCode, msg: wireErrMsg(body, resp.StatusCode)}
	}
	if resp.StatusCode >= 400 {
		// The replica answered; the request was wrong. That is a healthy
		// replica and a deterministic client error.
		rt.healthy.Report(base, true)
		return &routeError{status: resp.StatusCode, msg: wireErrMsg(body, resp.StatusCode)}
	}
	// The application-level length frame catches torn bodies whose transfer
	// framing was rewritten to look consistent (a proxy or middlebox that
	// recomputed Content-Length over a truncated payload).
	if want := resp.Header.Get("X-Era-Content-Length"); want != "" {
		if n, perr := strconv.Atoi(want); perr == nil && n != len(body) {
			rt.healthy.Report(base, false)
			return fmt.Errorf("cluster: %s sent %d of %d framed bytes", base, len(body), n)
		}
	}
	if decode != nil {
		if err := decode(body); err != nil {
			// A 200 whose body does not parse is a torn response, not an
			// answer; class it with the transport failures so it retries.
			rt.healthy.Report(base, false)
			return fmt.Errorf("cluster: decoding %s response: %w", base, err)
		}
	}
	rt.healthy.Report(base, true)
	return nil
}

// hedged races the primary attempt against a delayed secondary on the next
// candidate; the first success wins and the loser's context is canceled.
// Both failing returns the primary's error (it is the representative one).
func (rt *Router) hedged(ctx context.Context, primary, secondary string, heavy bool, build func(base string) (*http.Request, error), decode func(body []byte) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// decode mutates caller state, so the race must serialize it: each arm
	// decodes into a private buffer first and the winner applies.
	type outcome struct {
		err  error
		body []byte
	}
	run := func(base string) outcome {
		var body []byte
		err := rt.attempt(ctx, base, heavy, build, func(b []byte) error {
			body = b
			return nil
		})
		return outcome{err: err, body: body}
	}
	prim := make(chan outcome, 1)
	go func() { prim <- run(primary) }()

	finish := func(o outcome) error {
		if o.err != nil {
			return o.err
		}
		if decode == nil {
			return nil
		}
		return decode(o.body)
	}

	var firstErr error
	var timer *time.Timer
	timer = time.NewTimer(rt.cfg.HedgeDelay)
	defer timer.Stop()
	select {
	case o := <-prim:
		if o.err == nil || clientErr(o.err) {
			return finish(o)
		}
		// Primary failed fast: its outcome is consumed, so only the
		// secondary is still owed — fall through to it immediately. (Leaving
		// prim live here would make the drain loop below wait for a second
		// primary outcome that never comes, stalling until the deadline.)
		firstErr = o.err
		prim = nil
	case <-timer.C:
		// Primary is slow: hedge.
	case <-ctx.Done():
		return ctx.Err()
	}
	rt.hedges.Add(1)
	sec := make(chan outcome, 1)
	go func() { sec <- run(secondary) }()
	for prim != nil || sec != nil {
		var o outcome
		select {
		case o = <-prim: // nil channel blocks: only pending arms can fire
			prim = nil
		case o = <-sec:
			sec = nil
		case <-ctx.Done():
			return ctx.Err()
		}
		if o.err == nil || clientErr(o.err) {
			return finish(o)
		}
		if firstErr == nil {
			firstErr = o.err
		}
	}
	return firstErr
}

// wireErrMsg extracts the {"error": ...} body of a replica error response.
func wireErrMsg(body []byte, status int) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("replica answered status %d", status)
}

// doJSON runs one JSON round trip through doShard.
func (rt *Router) doJSON(ctx context.Context, owners []string, heavy bool, method, path string, reqBody, out any) error {
	var payload []byte
	if reqBody != nil {
		var err error
		payload, err = json.Marshal(reqBody)
		if err != nil {
			return err
		}
	}
	return rt.doShard(ctx, owners, heavy, func(base string) (*http.Request, error) {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	}, func(body []byte) error {
		if out == nil {
			return nil
		}
		return json.Unmarshal(body, out)
	})
}

// doBytes runs one octet-stream GET through doShard.
func (rt *Router) doBytes(ctx context.Context, owners []string, path string) ([]byte, error) {
	var out []byte
	err := rt.doShard(ctx, owners, false, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+path, nil)
	}, func(body []byte) error {
		out = body
		return nil
	})
	return out, err
}

// ---------------------------------------------------------------------------
// Shard data access: sub-queries, content slices, stitch construction.

func (rt *Router) shardQuery(ctx context.Context, sh *shardInfo, op server.QueryOp) (server.QueryResponse, error) {
	path, heavy := "/v1/query", false
	if kind, err := era.ParseOpKind(op.Op); err == nil && kind.IsAnalytic() {
		// Analytics walks a whole shard; its runtime is the corpus's, not
		// the network's, so it keeps the full request budget per attempt.
		path, heavy = "/v1/analytics", true
	}
	var resp server.QueryResponse
	err := rt.doJSON(ctx, sh.Owners, heavy, http.MethodPost, path, server.QueryRequest{Index: sh.Name, QueryOp: op}, &resp)
	return resp, err
}

func (rt *Router) shardPrefixCounts(ctx context.Context, sh *shardInfo, minLen int) (map[string]int, error) {
	var resp struct {
		Counts map[string]int `json:"counts"`
	}
	err := rt.doJSON(ctx, sh.Owners, true, http.MethodPost, "/v1/internal/prefixcounts",
		map[string]any{"index": sh.Name, "min_len": minLen}, &resp)
	return resp.Counts, err
}

// shardSlice fetches local content [lo, hi) of one shard.
func (rt *Router) shardSlice(ctx context.Context, sh *shardInfo, lo, hi int) ([]byte, error) {
	if lo == hi {
		return nil, nil
	}
	return rt.doBytes(ctx, sh.Owners, fmt.Sprintf("/v1/indexes/%s/slice?lo=%d&hi=%d", sh.Name, lo, hi))
}

// globalSlice materializes global virtual-string bytes [lo, hi), spanning
// shards as needed; position totalLen-1 is the virtual terminator, which no
// replica stores, so it is synthesized.
func (rt *Router) globalSlice(ctx context.Context, topo *topology, lo, hi int) ([]byte, error) {
	if lo < 0 || hi < lo || hi > topo.totalLen {
		return nil, fmt.Errorf("cluster: global slice [%d, %d) out of range [0, %d]", lo, hi, topo.totalLen)
	}
	needTerm := hi == topo.totalLen
	if needTerm {
		hi--
	}
	out := make([]byte, 0, hi-lo+1)
	for i := range topo.shards {
		sh := &topo.shards[i]
		shLo, shHi := sh.OffStart, sh.OffStart+sh.Symbols-1
		a, b := lo, hi
		if a < shLo {
			a = shLo
		}
		if b > shHi {
			b = shHi
		}
		if a >= b {
			continue
		}
		part, err := rt.shardSlice(ctx, sh, a-shLo, b-shLo)
		if err != nil {
			return nil, err
		}
		if len(part) != b-a {
			return nil, fmt.Errorf("cluster: shard %s returned %d bytes for a %d-byte slice", sh.Name, len(part), b-a)
		}
		out = append(out, part...)
	}
	if needTerm {
		out = append(out, era.TerminatorByte)
	}
	return out, nil
}

// junctionWindow returns global [lo, hi), serving from the refresh-time
// cache when the range fits junction j's prefetched window.
func (rt *Router) junctionWindow(ctx context.Context, topo *topology, j, lo, hi int) ([]byte, error) {
	if j < len(topo.winCache) && topo.winCache[j] != nil {
		cLo := topo.winLo[j]
		if lo >= cLo && hi <= cLo+len(topo.winCache[j]) {
			return topo.winCache[j][lo-cLo : hi-cLo], nil
		}
	}
	return rt.globalSlice(ctx, topo, lo, hi)
}

// buildStitch assembles the junction-scan view for pattern length m: every
// junction's stitch window is fetched up front (cache first), and junctions
// whose bytes are unreachable — their shard is down — are dropped with
// partial=true rather than scanned against fabricated bytes. The returned
// Stitch serves slices purely from the prefetched windows, so the scan
// itself cannot fail midway.
func (rt *Router) buildStitch(ctx context.Context, topo *topology, m int) (st *era.Stitch, partial bool, err error) {
	type win struct {
		lo   int
		data []byte
	}
	var bounds []int
	wins := map[int]win{}
	if m >= 2 {
		for j, b := range topo.bounds {
			lo, hi := b-m+1, b+m-1
			if lo < 0 {
				lo = 0
			}
			if hi > topo.totalLen {
				hi = topo.totalLen
			}
			data, werr := rt.junctionWindow(ctx, topo, j, lo, hi)
			if werr != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				partial = true
				continue
			}
			bounds = append(bounds, b)
			wins[b] = win{lo: lo, data: data}
		}
	}
	boundOf := func(lo, hi int) (win, bool) {
		// The stitch scan requests exactly one window per junction; find the
		// junction whose prefetched window covers the range.
		for _, b := range bounds {
			w := wins[b]
			if lo >= w.lo && hi <= w.lo+len(w.data) {
				return w, true
			}
		}
		return win{}, false
	}
	st = era.NewStitch(topo.totalLen, bounds, func(buf []byte, lo, hi int) []byte {
		if w, ok := boundOf(lo, hi); ok {
			return w.data[lo-w.lo : hi-w.lo]
		}
		// Unreachable by construction; returning an empty window of the
		// right length keeps the scan crash-free if it ever isn't.
		return make([]byte, hi-lo)
	})
	return st, partial, nil
}

// ---------------------------------------------------------------------------
// Routed execution: fan-out and stitch-aware merging per op kind.

// errShardDown marks a shard whose every replica failed; the caller decides
// between partial degradation and strict refusal.
var errShardDown = errors.New("cluster: shard unavailable")

// fanOut runs fn for every shard concurrently; failed shards are reported
// in down (ascending), a 4xx from any shard aborts with that error.
func (rt *Router) fanOut(ctx context.Context, topo *topology, fn func(i int, sh *shardInfo) error) (down []int, err error) {
	errs := make([]error, len(topo.shards))
	var wg sync.WaitGroup
	for i := range topo.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, &topo.shards[i])
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e == nil {
			continue
		}
		if clientErr(e) {
			return nil, e
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		down = append(down, i)
	}
	return down, nil
}

// degrade folds a fan-out's dead-shard list into the answer policy: strict
// mode refuses, otherwise the caller proceeds without those shards and the
// answer is flagged partial.
func (rt *Router) degrade(topo *topology, down []int) (partial bool, err error) {
	if len(down) == 0 {
		return false, nil
	}
	if rt.cfg.Strict {
		names := make([]string, len(down))
		for i, d := range down {
			names[i] = topo.shards[d].Name
		}
		return false, fmt.Errorf("%w: %s", errShardDown, strings.Join(names, ", "))
	}
	return true, nil
}

// execute answers one planned op through the routed fan-out and merge.
func (rt *Router) execute(ctx context.Context, topo *topology, op era.Op) (res era.Result, partial bool, err error) {
	// Analytics parameters are validated against the global corpus (the
	// replicas would validate against their local shard — a global document
	// ordinal can be perfectly valid and still exceed every shard's count).
	if op.Kind.IsAnalytic() {
		if verr := op.Validate(nil, topo.numDocs); verr != nil {
			return era.Result{}, false, &routeError{status: http.StatusBadRequest, msg: verr.Error()}
		}
	}
	switch op.Kind {
	case era.OpContains, era.OpCount, era.OpOccurrences:
		return rt.membership(ctx, topo, op)
	case era.OpTopK:
		return rt.topK(ctx, topo, op)
	case era.OpLongestRepeat:
		return rt.longestRepeat(ctx, topo, op)
	case era.OpCommonSubstring:
		return rt.commonSubstring(ctx, topo, op)
	case era.OpDocFreq:
		return rt.docFreq(ctx, topo, op)
	case era.OpMismatch:
		return rt.mismatch(ctx, topo, op)
	}
	return era.Result{}, false, &routeError{status: http.StatusBadRequest, msg: fmt.Sprintf("unsupported op kind %v", op.Kind)}
}

// membership merges per-shard contains/count/occurrences with the
// junction-crossing matches, exactly as ShardedIndex does. Per-shard
// sub-queries keep the client's occurrence cap: shards cover ascending
// disjoint ranges, so the merged first-Max needs at most the first Max from
// each shard.
func (rt *Router) membership(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	// Patterns containing the terminator byte can only match where '$' is
	// part of the global string — at its very end — so every shard but the
	// last would report phantom matches against its own local terminator.
	// Same gate as ShardedIndex.shardValid; skipped shards keep their
	// zero-valued response, which the merges below naturally ignore.
	withTerm := bytes.IndexByte(op.Pattern, era.TerminatorByte) >= 0
	kind := opName(op.Kind)
	resps := make([]server.QueryResponse, len(topo.shards))
	down, err := rt.fanOut(ctx, topo, func(i int, sh *shardInfo) error {
		if withTerm && i != len(topo.shards)-1 {
			return nil
		}
		r, qerr := rt.shardQuery(ctx, sh, server.QueryOp{Op: kind, Pattern: string(op.Pattern), Max: op.MaxOccurrences})
		resps[i] = r
		return qerr
	})
	if err != nil {
		return era.Result{}, false, err
	}
	partial, err := rt.degrade(topo, down)
	if err != nil {
		return era.Result{}, false, err
	}
	dead := map[int]bool{}
	for _, i := range down {
		dead[i] = true
	}

	switch op.Kind {
	case era.OpContains:
		for _, r := range resps {
			if r.Found {
				return era.Result{Found: true}, partial, nil
			}
		}
		st, stPartial, serr := rt.buildStitch(ctx, topo, len(op.Pattern))
		if serr != nil {
			return era.Result{}, false, serr
		}
		return era.Result{Found: len(st.CrossingOccurrences(op.Pattern, 1)) > 0}, partial || stPartial, nil
	case era.OpCount:
		st, stPartial, serr := rt.buildStitch(ctx, topo, len(op.Pattern))
		if serr != nil {
			return era.Result{}, false, serr
		}
		total := len(st.CrossingOccurrences(op.Pattern, 0))
		for i, r := range resps {
			if !dead[i] && r.Count != nil {
				total += *r.Count
			}
		}
		return era.Result{Found: total > 0, Count: total}, partial || stPartial, nil
	default: // era.OpOccurrences
		st, stPartial, serr := rt.buildStitch(ctx, topo, len(op.Pattern))
		if serr != nil {
			return era.Result{}, false, serr
		}
		crossing := st.CrossingOccurrences(op.Pattern, 0)
		perShard := make([][]int, 0, len(topo.shards))
		total := len(crossing)
		for i, r := range resps {
			if dead[i] {
				continue
			}
			if r.Count != nil {
				total += *r.Count
			}
			if len(r.Occurrences) == 0 {
				continue
			}
			occ := make([]int, len(r.Occurrences))
			for j, o := range r.Occurrences {
				occ[j] = o + topo.shards[i].OffStart
			}
			perShard = append(perShard, occ)
		}
		merged := era.MergeOccurrences(perShard, crossing, op.MaxOccurrences)
		return era.Result{Found: total > 0, Count: total, Occurrences: merged}, partial || stPartial, nil
	}
}

// topK aggregates exact global substring counts: every shard's full
// depth-L census (per-shard top-k alone cannot be merged exactly — a
// globally frequent substring can rank below k in every shard) plus the
// junction-crossing windows, ranked with the shared canonical tie-break
// and re-verified against the routed Count.
func (rt *Router) topK(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	perShard := make([]map[string]int, len(topo.shards))
	down, err := rt.fanOut(ctx, topo, func(i int, sh *shardInfo) error {
		counts, cerr := rt.shardPrefixCounts(ctx, sh, op.MinLen)
		perShard[i] = counts
		return cerr
	})
	if err != nil {
		return era.Result{}, false, err
	}
	partial, err := rt.degrade(topo, down)
	if err != nil {
		return era.Result{}, false, err
	}
	agg := map[string]int{}
	for _, m := range perShard {
		for s, c := range m {
			agg[s] += c
		}
	}
	st, stPartial, serr := rt.buildStitch(ctx, topo, op.MinLen)
	if serr != nil {
		return era.Result{}, false, serr
	}
	partial = partial || stPartial
	st.CrossingWindows(op.MinLen, func(_ int, window []byte) {
		agg[string(window)]++
	})
	ans := era.TopAnswer(agg, op.K)
	if !partial {
		// Same insurance as ShardedIndex.topK: the ranked counts must agree
		// with the authoritative global Count; a disagreement (unreachable
		// while the aggregation is exact) triggers a full re-count.
		for _, e := range ans.Top {
			cnt, cerr := rt.routedCount(ctx, topo, e.Pattern)
			if cerr != nil {
				partial = true
				break
			}
			if cnt != e.Count {
				for s := range agg {
					c, rerr := rt.routedCount(ctx, topo, []byte(s))
					if rerr != nil {
						partial = true
						break
					}
					agg[s] = c
				}
				ans = era.TopAnswer(agg, op.K)
				break
			}
		}
	}
	return ans, partial, nil
}

// routedCount is the membership count fan-out reused by topK's re-verify.
func (rt *Router) routedCount(ctx context.Context, topo *topology, pattern []byte) (int, error) {
	res, partial, err := rt.membership(ctx, topo, era.Op{Kind: era.OpCount, Pattern: pattern})
	if err != nil {
		return 0, err
	}
	if partial {
		return 0, errShardDown
	}
	return res.Count, nil
}

// longestRepeat answers lrs: per-shard tree answers are sound lower bounds
// (and power the degraded path); the true answer, which may straddle shard
// cuts, comes from the canonical content-level search over the fully
// materialized virtual string — identical to ShardedIndex.
func (rt *Router) longestRepeat(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	resps := make([]server.QueryResponse, len(topo.shards))
	down, err := rt.fanOut(ctx, topo, func(i int, sh *shardInfo) error {
		r, qerr := rt.shardQuery(ctx, sh, server.QueryOp{Op: "lrs"})
		resps[i] = r
		return qerr
	})
	if err != nil {
		return era.Result{}, false, err
	}
	partial, err := rt.degrade(topo, down)
	if err != nil {
		return era.Result{}, false, err
	}
	dead := map[int]bool{}
	for _, i := range down {
		dead[i] = true
	}
	lo := 0
	for i, r := range resps {
		if !dead[i] && len(r.Pattern) > lo {
			lo = len(r.Pattern)
		}
	}

	if !partial {
		content, cerr := rt.globalSlice(ctx, topo, 0, topo.totalLen-1)
		if cerr != nil {
			if ctx.Err() != nil {
				return era.Result{}, false, ctx.Err()
			}
			// A shard died between the fan-out and the content fetch.
			if rt.cfg.Strict {
				return era.Result{}, false, fmt.Errorf("%w: content fetch: %v", errShardDown, cerr)
			}
			partial = true
		} else {
			label, occ, lerr := era.LongestRepeatContent(ctx, content, lo)
			if lerr != nil {
				return era.Result{}, false, lerr
			}
			return era.Result{Found: label != nil, Pattern: label, Occurrences: occ, Count: len(occ)}, false, nil
		}
	}
	// Degraded: the best within-shard answer among the survivors — never a
	// fabricated cross-junction repeat. Canonical tie-break: longest, then
	// lexicographically smallest.
	var best []byte
	bestAt := -1
	for i, r := range resps {
		if dead[i] || r.Pattern == "" {
			continue
		}
		lbl := []byte(r.Pattern)
		if best == nil || len(lbl) > len(best) || (len(lbl) == len(best) && bytes.Compare(lbl, best) < 0) {
			best, bestAt = lbl, i
		}
	}
	if best == nil {
		return era.Result{}, true, nil
	}
	occ := make([]int, len(resps[bestAt].Occurrences))
	for j, o := range resps[bestAt].Occurrences {
		occ[j] = o + topo.shards[bestAt].OffStart
	}
	return era.Result{Found: true, Pattern: best, Occurrences: occ, Count: len(occ)}, true, nil
}

// commonSubstring answers lcs: both documents in one shard delegate to that
// shard's tree executor; documents in different shards fetch their raw
// bytes and run the canonical hash search — either path is a pure function
// of the two documents' contents, so the answers coincide.
func (rt *Router) commonSubstring(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	si, la := shardOfDoc(topo, op.DocA)
	sj, lb := shardOfDoc(topo, op.DocB)
	if si == sj {
		resp, err := rt.shardQuery(ctx, &topo.shards[si], server.QueryOp{Op: "lcs", DocA: la, DocB: lb})
		if err == nil {
			return fromWire(era.OpCommonSubstring, resp), false, nil
		}
		if clientErr(err) || ctx.Err() != nil {
			return era.Result{}, false, err
		}
		if rt.cfg.Strict {
			return era.Result{}, false, fmt.Errorf("%w: %s: %v", errShardDown, topo.shards[si].Name, err)
		}
		return era.Result{OffsetA: -1, OffsetB: -1}, true, nil
	}
	var docA, docB []byte
	fetch := func(s, ord int, out *[]byte) error {
		b, err := rt.doBytes(ctx, topo.shards[s].Owners, fmt.Sprintf("/v1/indexes/%s/doc/%d", topo.shards[s].Name, ord))
		*out = b
		return err
	}
	errA := fetch(si, la, &docA)
	errB := fetch(sj, lb, &docB)
	for _, ferr := range []error{errA, errB} {
		if ferr == nil {
			continue
		}
		if clientErr(ferr) || ctx.Err() != nil {
			return era.Result{}, false, ferr
		}
		if rt.cfg.Strict {
			return era.Result{}, false, fmt.Errorf("%w: %v", errShardDown, ferr)
		}
		return era.Result{OffsetA: -1, OffsetB: -1}, true, nil
	}
	label, offA, offB := era.LCSTwoStrings(docA, docB)
	return era.Result{Found: label != nil, Pattern: label, OffsetA: offA, OffsetB: offB, Count: len(label)}, false, nil
}

// docFreq sums per-shard document-frequency stats element-wise: shard cuts
// are document-aligned, so no occurrence is double-counted or lost.
func (rt *Router) docFreq(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	pats := make([]string, len(op.Patterns))
	for i, p := range op.Patterns {
		pats[i] = string(p)
	}
	resps := make([]server.QueryResponse, len(topo.shards))
	down, err := rt.fanOut(ctx, topo, func(i int, sh *shardInfo) error {
		r, qerr := rt.shardQuery(ctx, sh, server.QueryOp{Op: "docfreq", Patterns: pats})
		resps[i] = r
		return qerr
	})
	if err != nil {
		return era.Result{}, false, err
	}
	partial, err := rt.degrade(topo, down)
	if err != nil {
		return era.Result{}, false, err
	}
	dead := map[int]bool{}
	for _, i := range down {
		dead[i] = true
	}
	res := era.Result{Stats: make([]era.PatternStat, len(op.Patterns))}
	for i, r := range resps {
		if dead[i] {
			continue
		}
		for j, s := range r.Stats {
			if j >= len(res.Stats) {
				break
			}
			res.Stats[j].Docs += s.Docs
			res.Stats[j].Count += s.Count
		}
	}
	for _, s := range res.Stats {
		res.Count += s.Count
		if s.Count > 0 {
			res.Found = true
		}
	}
	return res, partial, nil
}

// mismatch merges per-shard bounded-branching matches with the
// Hamming-scanned junction windows, same ascending interleave as
// occurrences.
func (rt *Router) mismatch(ctx context.Context, topo *topology, op era.Op) (era.Result, bool, error) {
	resps := make([]server.QueryResponse, len(topo.shards))
	down, err := rt.fanOut(ctx, topo, func(i int, sh *shardInfo) error {
		// Max 0: the merge needs every within-shard match to cap globally.
		r, qerr := rt.shardQuery(ctx, sh, server.QueryOp{Op: "mismatch", Pattern: string(op.Pattern), K: op.K})
		resps[i] = r
		return qerr
	})
	if err != nil {
		return era.Result{}, false, err
	}
	partial, err := rt.degrade(topo, down)
	if err != nil {
		return era.Result{}, false, err
	}
	dead := map[int]bool{}
	for _, i := range down {
		dead[i] = true
	}
	perShard := make([][]int, 0, len(topo.shards))
	for i, r := range resps {
		if dead[i] || len(r.Occurrences) == 0 {
			continue
		}
		occ := make([]int, len(r.Occurrences))
		for j, o := range r.Occurrences {
			occ[j] = o + topo.shards[i].OffStart
		}
		perShard = append(perShard, occ)
	}
	st, stPartial, serr := rt.buildStitch(ctx, topo, len(op.Pattern))
	if serr != nil {
		return era.Result{}, false, serr
	}
	var crossing []int
	st.CrossingWindows(len(op.Pattern), func(start int, window []byte) {
		if era.HammingAtMost(window, op.Pattern, op.K) {
			crossing = append(crossing, start)
		}
	})
	merged := era.MergeOccurrences(perShard, crossing, 0)
	return era.MismatchAnswer(merged, op.MaxOccurrences), partial || stPartial, nil
}

// shardOfDoc resolves a global document ordinal to (shard index, local
// ordinal).
func shardOfDoc(topo *topology, doc int) (int, int) {
	i := sort.Search(len(topo.shards), func(j int) bool { return topo.shards[j].DocStart > doc }) - 1
	if i < 0 {
		i = 0
	}
	return i, doc - topo.shards[i].DocStart
}

// fromWire converts a replica's wire response back to the library result.
func fromWire(kind era.OpKind, w server.QueryResponse) era.Result {
	res := era.Result{Found: w.Found, Occurrences: w.Occurrences}
	if w.Count != nil {
		res.Count = *w.Count
	}
	if w.Pattern != "" {
		res.Pattern = []byte(w.Pattern)
	}
	if w.OffsetA != nil {
		res.OffsetA = *w.OffsetA
	}
	if w.OffsetB != nil {
		res.OffsetB = *w.OffsetB
	}
	if len(w.Top) > 0 {
		res.Top = make([]era.TopEntry, len(w.Top))
		for i, t := range w.Top {
			res.Top[i] = era.TopEntry{Pattern: []byte(t.Pattern), Count: t.Count}
		}
	}
	if len(w.Stats) > 0 {
		res.Stats = make([]era.PatternStat, len(w.Stats))
		for i, s := range w.Stats {
			res.Stats[i] = era.PatternStat{Docs: s.Docs, Count: s.Count}
		}
	}
	return res
}

func opName(kind era.OpKind) string { return kind.String() }

// ---------------------------------------------------------------------------
// HTTP front end.

// Handler returns the router's HTTP API: the same /v1/query, /v1/analytics
// and /v1/batch surface as a replica (so clients cannot tell a router from
// a monolithic server except by the partial field), plus its own probes and
// metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(v); err != nil {
			rt.logf("cluster: encoding response: %v", err)
		}
	}
	writeErr := func(w http.ResponseWriter, status int, msg string) {
		writeJSON(w, status, map[string]string{"error": msg})
	}
	fail := func(w http.ResponseWriter, err error) {
		var re *routeError
		switch {
		case errors.As(err, &re):
			writeErr(w, re.status, re.msg)
		case errors.Is(err, errShardDown):
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			writeErr(w, http.StatusGatewayTimeout, "routed query deadline exceeded")
		case errors.Is(err, context.Canceled):
			writeErr(w, http.StatusServiceUnavailable, "request canceled")
		default:
			// Whatever broke the fan-out was replica-side or network-side.
			writeErr(w, http.StatusBadGateway, err.Error())
		}
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		topo := rt.topo.Load()
		anyHealthy := false
		for _, ok := range rt.healthy.Snapshot() {
			if ok {
				anyHealthy = true
				break
			}
		}
		if topo == nil || !anyHealthy {
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		topo := rt.topo.Load()
		shards := 0
		if topo != nil {
			shards = len(topo.shards)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"requests":    rt.requests.Load(),
			"retries":     rt.retries.Load(),
			"hedges":      rt.hedges.Load(),
			"partials":    rt.partials.Load(),
			"shard_down":  rt.shardDown.Load(),
			"shards":      shards,
			"replicas":    rt.healthy.Snapshot(),
			"replication": rt.cfg.Replication,
		})
	})
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		topo := rt.topo.Load()
		if topo == nil {
			writeJSON(w, http.StatusOK, map[string]any{"indexes": []any{}})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"indexes": []map[string]any{{
			"name":      topo.corpus,
			"symbols":   topo.totalLen,
			"documents": topo.numDocs,
			"shards":    len(topo.shards),
		}}})
	})

	serveOps := func(w http.ResponseWriter, r *http.Request, index string, qops []server.QueryOp, batch bool) {
		topo := rt.topo.Load()
		if topo == nil {
			writeErr(w, http.StatusServiceUnavailable, "router has no topology yet")
			return
		}
		if index != topo.corpus {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("no index named %q routed (serving %q)", index, topo.corpus))
			return
		}
		rt.requests.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
		defer cancel()
		wire := make([]server.QueryResponse, len(qops))
		for i := range qops {
			op, err := qops[i].Plan()
			if err != nil {
				writeErr(w, http.StatusBadRequest, err.Error())
				return
			}
			res, partial, err := rt.execute(ctx, topo, op)
			if err != nil {
				fail(w, err)
				return
			}
			if partial {
				rt.partials.Add(1)
			}
			wire[i] = server.ToWire(op, res)
			wire[i].Partial = partial
		}
		if batch {
			writeJSON(w, http.StatusOK, map[string]any{"results": wire})
			return
		}
		writeJSON(w, http.StatusOK, wire[0])
	}
	readJSON := func(w http.ResponseWriter, r *http.Request, dst any) bool {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return false
		}
		return true
	}
	single := func(analyticsOnly bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req server.QueryRequest
			if !readJSON(w, r, &req) {
				return
			}
			if analyticsOnly {
				// Same surface discipline as the replica API (an unknown op
				// falls through to Plan's own parse error).
				if kind, err := era.ParseOpKind(req.Op); err == nil && !kind.IsAnalytic() {
					writeErr(w, http.StatusBadRequest,
						fmt.Sprintf("op %q is a membership query, not an analytics op; use /v1/query", req.Op))
					return
				}
			}
			serveOps(w, r, req.Index, []server.QueryOp{req.QueryOp}, false)
		}
	}
	mux.HandleFunc("POST /v1/query", single(false))
	mux.HandleFunc("POST /v1/analytics", single(true))
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req server.BatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Ops) == 0 {
			writeErr(w, http.StatusBadRequest, "batch has no ops")
			return
		}
		if len(req.Ops) > server.MaxBatchOps {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("batch of %d ops exceeds the limit of %d", len(req.Ops), server.MaxBatchOps))
			return
		}
		serveOps(w, r, req.Index, req.Ops, true)
	})
	return mux
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.ErrLog != nil {
		rt.cfg.ErrLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}
