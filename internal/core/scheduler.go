package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"era/internal/sim"
	"era/internal/suffixtree"
)

// This file schedules virtual-tree groups onto workers. The old drivers
// dealt groups round-robin up front, so one unlucky worker holding the
// heaviest groups set the wall clock ("ERA Revisited" identifies exactly
// this group-size skew as a scaling dominator). Instead, groups sorted by
// estimated cost feed a shared queue that idle workers pull from — LPT plus
// work stealing. Real goroutines drain the queue for wall time; the modeled
// completion replays the same queue order deterministically with
// sim.AssignLPT over the measured per-group demands, so virtual times do not
// depend on goroutine timing.
//
// Determinism: a group's demand is a function of the group alone. Every
// group scan starts with one positioning seek whatever the arm position left
// by the previous group, CPU advances are pure sums, and each worker's disk
// handle is private (cross-worker interference is folded in analytically),
// so the measured (cpu, io) deltas are identical whichever worker runs the
// group, in whatever order. Sub-tree names derive from the global group
// index and assembly grafts in global group order, so trees, serialized
// output and aggregate Stats are byte-identical across worker counts — and
// match the serial build.

// groupJob is one queue entry: a group, its original index (naming, stats
// and assembly order) and its estimated cost (queue order).
type groupJob struct {
	gi   int
	g    Group
	cost int64
}

// estimateGroupCost predicts a group's relative construction demand from the
// VP statistics alone: every round fetches ~range symbols for each of the
// group's Freq leaves (range × frequency is the per-round traffic), and the
// leaf count also drives the sort and split work per round, so Freq
// dominates; the prefix count adds per-sub-tree fixed cost.
func estimateGroupCost(g Group) int64 {
	return g.Freq + int64(len(g.Prefixes))
}

// scheduleGroups orders the groups by descending estimated cost — the
// service order of the shared queue — stably, so equal-cost groups keep
// their original relative order and the schedule is deterministic.
func scheduleGroups(groups []Group) []groupJob {
	jobs := make([]groupJob, len(groups))
	for i, g := range groups {
		jobs[i] = groupJob{gi: i, g: g, cost: estimateGroupCost(g)}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].cost > jobs[b].cost })
	return jobs
}

// groupRun records the measured demand and output of one group's build. The
// Stats field holds only this group's share (scans, rounds, symbols, ranges,
// sub-trees, nodes, bytes, skips).
type groupRun struct {
	cpu, io  time.Duration
	seeks    int64
	stats    Stats
	trees    []*suffixtree.Tree
	flatSubs []flatSub
}

// runGroupQueue drains the job queue with one goroutine per context: idle
// workers pull the next-costliest remaining group (work stealing via a
// shared cursor). Results land in queue order; runs[i] belongs to jobs[i].
func runGroupQueue(ctxs []*buildContext, jobs []groupJob, model sim.CostModel,
	layout MemoryLayout, opts Options, collect, collectFlat bool) ([]groupRun, error) {

	runs := make([]groupRun, len(jobs))
	errs := make([]error, len(ctxs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := range ctxs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				if err := runGroupOn(ctxs[w], jobs[i], model, layout, opts, collect, collectFlat, &runs[i]); err != nil {
					errs[w] = fmt.Errorf("group %d: %w", jobs[i].gi, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// runGroupOn builds one group on a worker context, measuring its demands as
// deltas of the worker's clocks and counters.
func runGroupOn(ctx *buildContext, job groupJob, model sim.CostModel,
	layout MemoryLayout, opts Options, collect, collectFlat bool, out *groupRun) error {

	cpu0, io0 := ctx.cpu.Now(), ctx.io.Now()
	scan0 := ctx.sc.Stats()
	seeks0 := ctx.f.Disk().Stats().Seeks

	gres := &Result{collect: collect, collectFlat: collectFlat}
	gres.Stats.MinRange = int(^uint(0) >> 1)
	if err := processGroup(ctx, ctx.f, ctx.sc, ctx.cpu, ctx.io, model, layout, opts, job.g, job.gi, gres); err != nil {
		return err
	}

	scan1 := ctx.sc.Stats()
	gres.Stats.Scans = scan1.Scans - scan0.Scans
	gres.Stats.BytesFetched = scan1.BytesFetched - scan0.BytesFetched
	gres.Stats.SkipsTaken = scan1.Skips - scan0.Skips
	if gres.Stats.MinRange > gres.Stats.MaxRange {
		gres.Stats.MinRange = 0
	}
	out.cpu = ctx.cpu.Now() - cpu0
	out.io = ctx.io.Now() - io0
	out.seeks = ctx.f.Disk().Stats().Seeks - seeks0
	out.stats = gres.Stats
	out.trees = gres.subTrees
	out.flatSubs = gres.flatSubs
	return nil
}

// foldRuns aggregates the per-group results: Stats sums (in original group
// order), the deterministic modeled LPT assignment of measured demands onto
// workers, and per-worker WorkerStats. byGi maps a group's original index to
// its queue position.
func foldRuns(jobs []groupJob, runs []groupRun, workers int, agg *Stats) (cpu, io []time.Duration, ws []WorkerStats, byGi []int) {
	byGi = make([]int, len(jobs))
	for qi, job := range jobs {
		byGi[job.gi] = qi
	}
	for gi := range byGi {
		s := &runs[byGi[gi]].stats
		agg.Scans += s.Scans
		agg.Rounds += s.Rounds
		agg.SymbolsRead += s.SymbolsRead
		agg.SubTrees += s.SubTrees
		agg.TreeNodes += s.TreeNodes
		agg.BytesFetched += s.BytesFetched
		agg.SkipsTaken += s.SkipsTaken
		if s.MinRange > 0 && s.MinRange < agg.MinRange {
			agg.MinRange = s.MinRange
		}
		if s.MaxRange > agg.MaxRange {
			agg.MaxRange = s.MaxRange
		}
	}
	if agg.MinRange > agg.MaxRange {
		agg.MinRange = 0
	}

	durs := make([]time.Duration, len(runs))
	for i := range runs {
		durs[i] = runs[i].cpu + runs[i].io
	}
	assign := sim.AssignLPT(durs, workers)
	cpu = make([]time.Duration, workers)
	io = make([]time.Duration, workers)
	ws = make([]WorkerStats, workers)
	for i, w := range assign {
		cpu[w] += runs[i].cpu
		io[w] += runs[i].io
		ws[w].CPU += runs[i].cpu
		ws[w].IO += runs[i].io
		ws[w].Seeks += runs[i].seeks
		ws[w].Groups++
		ws[w].SubTrees += runs[i].stats.SubTrees
	}
	return cpu, io, ws, byGi
}
