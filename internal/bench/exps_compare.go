package bench

import (
	"errors"
	"strconv"
	"time"

	"era/internal/b2st"
	"era/internal/core"
	"era/internal/seq"
	"era/internal/trellis"
	"era/internal/ukkonen"
	"era/internal/wavefront"
	"era/internal/workload"
)

// RunTable2 reproduces Table 2: the taxonomy of construction algorithms,
// augmented with a measured micro-run of every implementation in this
// repository on the same small input.
func RunTable2(s Scale) (*Table, error) {
	t := &Table{ID: "table2", Paper: "Table 2", Title: "comparison of suffix tree construction algorithms",
		Header: []string{"algorithm", "category", "complexity", "string-access", "parallel", "measured(ms)"}}

	n := s.GB(0.25)
	mem := int64(s.GB(0.125))

	f, err := s.dataset(workload.DNA, n, 2001)
	if err != nil {
		return nil, err
	}
	view, err := f.View()
	if err != nil {
		return nil, err
	}

	// In-memory algorithms: wall time is meaningless across machines, so
	// report the modeled time of their string+tree touches via node counts;
	// here we report "-" and rely on category columns, but still run them
	// to prove they work at this size.
	if _, err := ukkonen.Build(view); err != nil {
		return nil, err
	}
	t.AddRow("Ukkonen", "in-memory", "O(n)", "random", "no", "-")
	if _, err := ukkonen.BuildNaive(view); err != nil {
		return nil, err
	}
	t.AddRow("Hunt-style naive", "in-memory", "O(n^2)", "random", "no", "-")

	tre, err := trellis.BuildSerial(f, trellis.Options{MemoryBudget: mem * 4})
	if err != nil {
		return nil, err
	}
	t.AddRow("TRELLIS", "semi-disk-based", "O(n^2)", "random", "no", ms(tre.Stats.VirtualTime))

	f2, err := s.dataset(workload.DNA, n, 2001)
	if err != nil {
		return nil, err
	}
	wf, err := wavefront.BuildSerial(f2, wavefront.Options{MemoryBudget: mem, WriteTrees: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("WaveFront", "out-of-core", "O(n^2)", "sequential", "yes", ms(wf.Stats.VirtualTime))

	f3, err := s.dataset(workload.DNA, n, 2001)
	if err != nil {
		return nil, err
	}
	bb, err := b2st.BuildSerial(f3, b2st.Options{MemoryBudget: mem})
	if err != nil {
		return nil, err
	}
	t.AddRow("B2ST", "out-of-core", "O(cn), c=2n/M", "sequential", "no", ms(bb.Stats.VirtualTime))

	f4, err := s.dataset(workload.DNA, n, 2001)
	if err != nil {
		return nil, err
	}
	er, err := core.BuildSerial(f4, core.Options{MemoryBudget: mem, SkipSeek: true, WriteTrees: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("ERA", "out-of-core", "O(n^2) worst, ~linear observed", "sequential", "yes", ms(er.Stats.VirtualTime))
	return t, nil
}

// competitorTimes runs ERA, WaveFront, B²ST and TRELLIS on the same dataset
// and budget, returning "-" where an algorithm cannot run (TRELLIS without
// enough memory for the string; B²ST above its implementation limit).
func competitorTimes(f func() (*seq.File, error), mem int64, b2stMax int64) (eraT, wfT, b2T, trT string, err error) {
	file, err := f()
	if err != nil {
		return
	}
	er, err := core.BuildSerial(file, core.Options{MemoryBudget: mem, SkipSeek: true, WriteTrees: true})
	if err != nil {
		return
	}
	eraT = ms(er.Stats.VirtualTime)

	file, err = f()
	if err != nil {
		return
	}
	wf, err := wavefront.BuildSerial(file, wavefront.Options{MemoryBudget: mem, WriteTrees: true})
	if err != nil {
		return
	}
	wfT = ms(wf.Stats.VirtualTime)

	file, err = f()
	if err != nil {
		return
	}
	bb, berr := b2st.BuildSerial(file, b2st.Options{MemoryBudget: mem, MaxMemory: b2stMax})
	if berr != nil {
		b2T = "-" // beyond the released implementation's memory support
	} else {
		b2T = ms(bb.Stats.VirtualTime)
	}

	file, err = f()
	if err != nil {
		return
	}
	tr, terr := trellis.BuildSerial(file, trellis.Options{MemoryBudget: mem})
	switch {
	case errors.Is(terr, trellis.ErrStringTooLarge):
		trT = "-" // the string must fit in memory (paper: plots start at 4GB)
	case terr != nil:
		err = terr
		return
	default:
		trT = ms(tr.Stats.VirtualTime)
	}
	return
}

// RunFig10a reproduces Fig. 10(a): all competitors on the human genome
// across memory budgets 0.5–16 GB.
func RunFig10a(s Scale) (*Table, error) {
	t := &Table{ID: "fig10a", Paper: "Fig. 10(a)", Title: "serial time vs memory; human genome (2.6GBps)",
		Header: []string{"mem(GB)", "WF(ms)", "B2ST(ms)", "Trellis(ms)", "ERA(ms)", "bestOther/ERA"}}
	n := s.GB(genomeGB)
	b2stMax := int64(s.GB(2)) // the released B2ST binary stops at 2 GB
	for _, gb := range []float64{0.5, 1, 1.5, 2, 4, 8, 16} {
		mem := int64(s.GB(gb))
		eraT, wfT, b2T, trT, err := competitorTimes(func() (*seq.File, error) {
			return s.dataset(workload.Genome, n, 10001)
		}, mem, b2stMax)
		if err != nil {
			return nil, err
		}
		t.AddRow(ftoa(gb), wfT, b2T, trT, eraT, bestOverRatio(eraT, wfT, b2T, trT))
	}
	t.Notes = append(t.Notes,
		"paper: ERA is ~2x the best competitor out-of-core; WF beats B2ST at large memory but collapses when memory is tight",
		"B2ST '-' above 2GB: released implementation limit; Trellis '-' where the string exceeds memory")
	return t, nil
}

// RunFig10b reproduces Fig. 10(b): competitors across string sizes at 1 GB.
func RunFig10b(s Scale) (*Table, error) {
	t := &Table{ID: "fig10b", Paper: "Fig. 10(b)", Title: "serial time vs string size; DNA; 1GB RAM",
		Header: []string{"size(GBps)", "WF(ms)", "B2ST(ms)", "ERA(ms)", "WF/ERA"}}
	mem := int64(s.GB(1))
	for _, gb := range []float64{2.5, 3, 3.5, 4} {
		n := s.GB(gb)
		eraT, wfT, b2T, _, err := competitorTimes(func() (*seq.File, error) {
			return s.dataset(workload.DNA, n, 10002)
		}, mem, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(ftoa(gb), wfT, b2T, eraT, ratioStr(wfT, eraT))
	}
	t.Notes = append(t.Notes, "paper: ERA at least 2x; the gap to WF widens with string length")
	return t, nil
}

// runFig11 measures one builder across the three alphabets (Fig. 11).
func runFig11(s Scale, id, paper, algo string) (*Table, error) {
	t := &Table{ID: id, Paper: paper, Title: algo + " across alphabets; 1GB RAM",
		Header: []string{"size(Gchars)", "DNA(ms)", "Protein(ms)", "English(ms)"}}
	mem := int64(s.GB(1))
	for _, gb := range []float64{2.5, 3, 3.5, 4} {
		n := s.GB(gb)
		row := []string{ftoa(gb)}
		for _, kind := range []workload.Kind{workload.DNA, workload.Protein, workload.English} {
			f, err := s.dataset(kind, n, 11001)
			if err != nil {
				return nil, err
			}
			var vt time.Duration
			if algo == "ERA" {
				r, err := core.BuildSerial(f, core.Options{MemoryBudget: mem, SkipSeek: true, WriteTrees: true})
				if err != nil {
					return nil, err
				}
				vt = r.Stats.VirtualTime
			} else {
				r, err := wavefront.BuildSerial(f, wavefront.Options{MemoryBudget: mem, WriteTrees: true})
				if err != nil {
					return nil, err
				}
				vt = r.Stats.VirtualTime
			}
			row = append(row, ms(vt))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RunFig11a reproduces Fig. 11(a): ERA's mild alphabet sensitivity.
func RunFig11a(s Scale) (*Table, error) {
	t, err := runFig11(s, "fig11a", "Fig. 11(a)", "ERA")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: DNA ~20% faster than protein/English (2-bit packing, smaller branch factor)")
	return t, nil
}

// RunFig11b reproduces Fig. 11(b): WaveFront's strong alphabet sensitivity.
func RunFig11b(s Scale) (*Table, error) {
	t, err := runFig11(s, "fig11b", "Fig. 11(b)", "WaveFront")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: WF degrades drastically with alphabet size (random tree navigation)")
	return t, nil
}

// bestOverRatio formats min(other timings)/era.
func bestOverRatio(era string, others ...string) string {
	e, ok := parseMS(era)
	if !ok {
		return "-"
	}
	best := time.Duration(-1)
	for _, o := range others {
		if v, ok := parseMS(o); ok && (best < 0 || v < best) {
			best = v
		}
	}
	if best < 0 {
		return "-"
	}
	return ratio(best, e)
}

func ratioStr(a, b string) string {
	av, aok := parseMS(a)
	bv, bok := parseMS(b)
	if !aok || !bok {
		return "-"
	}
	return ratio(av, bv)
}

func parseMS(s string) (time.Duration, bool) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return time.Duration(v * float64(time.Millisecond)), true
}
