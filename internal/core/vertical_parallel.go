package core

import (
	"fmt"
	"sync"
	"time"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/sim"
)

// This file parallelizes the counting scans of vertical partitioning (§4.1).
// The serial VerticalPartition in vertical.go is the tested reference; the
// chunked variant below must produce identical groups for every worker
// count, which TestChunkedVPMatchesSerial pins.
//
// Every refinement round counts fixed-length windows, and counting is
// embarrassingly parallel: the string is cut into one span of window starts
// per worker, each worker scans its span (reading k-1 symbols past its end —
// the S-prefix-1 overlap) with its own rolling-code vertCounter into its own
// dense table, and the master merges the per-worker tables. The refinement
// logic between scans (extend/emit/drop, the p$ handling) stays on the
// master; it touches only the working set, never S.
//
// Modeled time uses the max-chunk bound: each round is a barrier (the next
// working set needs the merged counts), so a round costs the combine of the
// workers' measured CPU and I/O demands — CombineSharedDisk for cores
// sharing one disk, CombineSharedNothing for cluster nodes scanning their
// local copies — and VP time is the sum over rounds.

// verticalPartitionChunked is VerticalPartition with every counting scan
// split across the workers' contexts. combine folds one round's per-worker
// demands into the round's completion time; mergeCost, if non-nil, prices
// the per-round exchange of count tables (used by the shared-nothing
// driver). It returns the groups, the VP stats and the modeled VP time.
func verticalPartitionChunked(ctxs []*buildContext, n int, model sim.CostModel, fm int64, grouping bool,
	combine func(cpu, io []time.Duration) time.Duration,
	mergeCost func(working int) time.Duration) ([]Group, VerticalStats, time.Duration, error) {

	if fm < 1 {
		return nil, VerticalStats{}, 0, fmt.Errorf("core: FM %d < 1", fm)
	}
	syms := ctxs[0].f.Alphabet().Symbols()

	working := make([][]byte, 0, len(syms))
	for _, s := range syms {
		working = append(working, []byte{s})
	}
	final := []Prefix{{Label: []byte{alphabet.Terminator}, Freq: 1}}

	var stats VerticalStats
	var vpTime time.Duration
	var freqs []int64
	var labels byteArena // backs every prefix label; never reset
	k := 1
	for len(working) > 0 {
		stats.Iterations++
		if cap(freqs) < len(working) {
			freqs = make([]int64, len(working))
		}
		freqs = freqs[:len(working)]

		tail, roundTime, err := chunkedScanCount(ctxs, model, n, k, working, freqs, combine)
		if err != nil {
			return nil, stats, vpTime, err
		}
		vpTime += roundTime
		if mergeCost != nil {
			vpTime += mergeCost(len(working))
		}

		// Refinement between scans: identical to the serial reference.
		var next [][]byte
		for wi, p := range working {
			fp := freqs[wi]
			switch {
			case fp == 0:
				// Prefix does not occur; drop (paper: fTGT = 0).
			case fp <= fm:
				lbl := labels.grab(k)
				copy(lbl, p)
				final = append(final, Prefix{Label: lbl, Freq: fp})
			default:
				for _, s := range syms {
					ext := labels.grab(k + 1)
					copy(ext, p)
					ext[k] = s
					next = append(next, ext)
				}
				if string(tail) == string(p) {
					lbl := labels.grab(k + 1)
					copy(lbl, p)
					lbl[k] = alphabet.Terminator
					final = append(final, Prefix{Label: lbl, Freq: 1})
				}
			}
		}
		working = next
		k++
		if len(working) > 0 && k >= n {
			return nil, stats, vpTime, fmt.Errorf("core: prefix refinement reached string length; FM %d too small for string of length %d", fm, n)
		}
	}

	stats.Prefixes = len(final)
	for _, p := range final {
		if p.Freq > stats.MaxFreq {
			stats.MaxFreq = p.Freq
		}
	}

	groups := groupPrefixes(final, fm, grouping)
	stats.Groups = len(groups)
	return groups, stats, vpTime, nil
}

// chunkedScanCount performs one round's counting scan across the workers and
// merges the per-worker dense tables into freqs. It returns the k symbols
// before the terminator (captured by the worker whose chunk ends the string)
// and the round's modeled completion time. Windows too wide for a dense
// table fall back to the serial map scan on worker 0 (the regime is rare:
// refinement depth times code bits would have to exceed maxVertTableBits).
func chunkedScanCount(ctxs []*buildContext, model sim.CostModel, n, k int, working [][]byte, freqs []int64,
	combine func(cpu, io []time.Duration) time.Duration) ([]byte, time.Duration, error) {

	clear(freqs)
	limit := n - k // exclusive bound on window start
	if limit <= 0 {
		return nil, 0, nil
	}
	W := len(ctxs)
	cpu := make([]time.Duration, W)
	io := make([]time.Duration, W)

	if denseSizeFor(ctxs[0].vc.bits, k, n) < 0 {
		ctx := ctxs[0]
		cpu0, io0 := ctx.cpu.Now(), ctx.io.Now()
		tail, err := scanCountMap(ctx.vpsc, ctx.cpu, model, n, k, working, freqs)
		if err != nil {
			return nil, 0, err
		}
		cpu[0] = ctx.cpu.Now() - cpu0
		io[0] = ctx.io.Now() - io0
		return tail, combine(cpu, io), nil
	}

	counts := make([][]int64, W)
	tails := make([][]byte, W)
	errs := make([]error, W)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		lo, hi := limit*w/W, limit*(w+1)/W
		if lo >= hi {
			continue // more workers than window starts; nothing to scan
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ctx := ctxs[w]
			t := ctx.vc.table(k, n)
			counts[w] = t
			cpu0, io0 := ctx.cpu.Now(), ctx.io.Now()
			tail, err := scanCountDenseChunk(ctx.vc, t, ctx.vpsc, n, k, lo, hi)
			if err != nil {
				errs[w] = err
				return
			}
			ctx.cpu.Advance(model.CPUTime(int64(hi - lo)))
			cpu[w] = ctx.cpu.Now() - cpu0
			io[w] = ctx.io.Now() - io0
			tails[w] = tail
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}

	// Merge: the working-set frequencies are the element-wise sums of the
	// per-worker tables, read off at the working prefixes' codes.
	for wi, p := range working {
		code := packRanks(ctxs[0].vc, p)
		var f int64
		for w := range counts {
			if counts[w] != nil {
				f += counts[w][code]
			}
		}
		freqs[wi] = f
	}
	var tail []byte
	for _, t := range tails {
		if t != nil {
			tail = t
		}
	}
	return tail, combine(cpu, io), nil
}

// scanCountDenseChunk counts the length-k windows of S starting in [lo, hi)
// into counts, reading S[lo : hi+k-1] through sc — one positioning jump,
// then strictly sequential, the same rolling shift-or loop as the serial
// scanCountDense. It returns the k symbols before the terminator when the
// chunk covers them (window start n-1-k lies in [lo, hi)), nil otherwise.
func scanCountDenseChunk(vc *vertCounter, counts []int64, sc *seq.Scanner, n, k, lo, hi int) ([]byte, error) {
	sc.Reset()
	const chunk = 64 * 1024
	buf := vc.scanBuf(chunk + k - 1)
	var tail []byte
	bits, codes := vc.bits, &vc.rcodes
	mask := len(counts) - 1
	// The last window of the span starts at hi-1 and ends at hi+k-2, so the
	// chunk never reads past hi+k-1 (the S-prefix-1 overlap into the next
	// worker's span) — nor past the string end.
	for base := lo; base < hi; base += chunk {
		want := chunk + k - 1
		if base+want > hi+k-1 {
			want = hi + k - 1 - base
		}
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return nil, err
		}
		end := base + got - k // last window start fully inside this fetch
		code := 0
		for t := 0; t < k-1 && t < got; t++ {
			code = code<<bits | int(codes[buf[t]])
		}
		for i := base; i <= end && i < hi; i++ {
			code = (code<<bits | int(codes[buf[i-base+k-1]])) & mask
			counts[code]++
		}
		if tail == nil && base+got >= n-1 && n-1-k >= base {
			tail = append([]byte(nil), buf[n-1-k-base:n-1-base]...)
		}
	}
	return tail, nil
}
