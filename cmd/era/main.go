// Command era builds and queries suffix tree indexes with the ERA
// algorithm.
//
// Usage:
//
//	era build -in genome.seq -out genome.idx -mem 67108864 -mode serial
//	era build -gen dna -n 500000 -out dna.idx
//	era query -index dna.idx -pattern GGTGATG
//	era stats -index dna.idx
//	era serve -addr :8329 dna.idx genome.idx
//	era serve -addr :8329 -dir indexes/
//
// serve exposes the indexes over a JSON HTTP API (see internal/server):
//
//	curl -s localhost:8329/v1/indexes
//	curl -s -d '{"index":"dna","op":"count","pattern":"GGTGATG"}' localhost:8329/v1/query
//	curl -s -d '{"index":"dna","ops":[{"op":"contains","pattern":"TG"},{"op":"occurrences","pattern":"GGT","max":10}]}' localhost:8329/v1/batch
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"era"
	"era/internal/server"
	"era/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "serve":
		serve(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  era build -in FILE | -gen KIND -n N [-out FILE] [-mem BYTES] [-mode serial|shared-disk|shared-nothing] [-workers N] [-skipseek]
  era query -index FILE -pattern P [-max N]
  era stats -index FILE
  era serve [-addr HOST:PORT] [-cache N] [-dir DIR] [INDEX.idx ...]`)
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr  = fs.String("addr", ":8329", "listen address")
		dir   = fs.String("dir", "", "load every *.idx file in this directory")
		cache = fs.Int("cache", 4096, "query result cache capacity (0 disables)")
	)
	fs.Parse(args)
	if *dir == "" && fs.NArg() == 0 {
		fatal(fmt.Errorf("serve needs -dir or at least one index file"))
	}

	engine := server.NewEngine(*cache)
	// Engine.Load treats a repeated name as a hot reload; at startup that
	// would silently shadow one file's corpus with another's, so duplicate
	// names across -dir and positional files are an error here.
	seen := make(map[string]bool)
	checkDup := func(name string) {
		if seen[name] {
			fatal(fmt.Errorf("two index files carry the name %q; rebuild one with a distinct `era build -name` (unnamed files use their base name)", name))
		}
		seen[name] = true
	}
	if *dir != "" {
		names, err := engine.LoadDir(*dir)
		if err != nil {
			fatal(err)
		}
		for _, name := range names {
			checkDup(name)
		}
		log.Printf("loaded %d indexes from %s: %v", len(names), *dir, names)
	}
	for _, path := range fs.Args() {
		name, err := engine.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		checkDup(name)
		idx, _ := engine.Get(name)
		log.Printf("loaded %s as %q (%d symbols, %d tree nodes)", path, name, idx.Len(), idx.TreeNodes())
	}

	log.Printf("serving %d indexes on %s", len(engine.Names()), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.NewHandler(engine),
		// Bound header dribble and idle keep-alives so stalled clients
		// cannot park goroutines and fds forever. No WriteTimeout: large
		// occurrence responses on slow links are legitimate.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input file (raw symbols; terminator optional)")
		gen     = fs.String("gen", "", "generate a synthetic dataset instead: genome, dna, protein, english")
		n       = fs.Int("n", 1<<20, "symbols to generate with -gen")
		seed    = fs.Int64("seed", 42, "generator seed")
		out     = fs.String("out", "index.idx", "output index file")
		name    = fs.String("name", "", "corpus name stored in the index (default: -out base name); era serve addresses indexes by it")
		mem     = fs.Int64("mem", 64<<20, "construction memory budget in bytes")
		mode    = fs.String("mode", "serial", "serial, shared-disk or shared-nothing")
		workers = fs.Int("workers", 4, "cores/nodes for the parallel modes")
		skip    = fs.Bool("skipseek", true, "enable the disk seek optimization (§4.4)")
	)
	fs.Parse(args)

	var data []byte
	var err error
	switch {
	case *gen != "":
		data, err = workload.Generate(workload.Kind(*gen), *n, *seed)
		if err == nil {
			data = data[:len(data)-1] // Build appends its own terminator
		}
	case *in != "":
		data, err = os.ReadFile(*in)
		if err == nil && len(data) > 0 && data[len(data)-1] == '$' {
			data = data[:len(data)-1]
		}
	default:
		err = fmt.Errorf("one of -in or -gen is required")
	}
	if err != nil {
		fatal(err)
	}

	cfg := &era.Config{MemoryBudget: *mem, Workers: *workers, SkipSeek: *skip}
	switch *mode {
	case "serial":
		cfg.Mode = era.Serial
	case "shared-disk":
		cfg.Mode = era.SharedDisk
	case "shared-nothing":
		cfg.Mode = era.SharedNothing
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	idx, err := era.Build(data, cfg)
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		base := filepath.Base(*out)
		*name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	idx.SetName(*name)
	if err := idx.WriteFile(*out); err != nil {
		fatal(err)
	}
	s := idx.Stats()
	fmt.Printf("indexed %d symbols (alphabet %s) into %s as %q\n", idx.Len()-1, idx.Alphabet().Name(), *out, *name)
	fmt.Printf("modeled time %v, %d scans, %d prefixes, %d virtual trees, %d sub-trees, %d tree nodes\n",
		s.ModeledTime, s.Scans, s.Prefixes, s.Groups, s.SubTrees, s.TreeNodes)
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		index   = fs.String("index", "", "index file written by era build")
		pattern = fs.String("pattern", "", "pattern to search")
		maxOut  = fs.Int("max", 10, "maximum occurrences to print")
	)
	fs.Parse(args)
	if *index == "" || *pattern == "" {
		fatal(fmt.Errorf("-index and -pattern are required"))
	}
	idx := load(*index)
	occ := idx.Occurrences([]byte(*pattern))
	fmt.Printf("%q occurs %d times\n", *pattern, len(occ))
	for i, o := range occ {
		if i >= *maxOut {
			fmt.Printf("... and %d more\n", len(occ)-*maxOut)
			break
		}
		fmt.Printf("  offset %d\n", o)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "", "index file written by era build")
	fs.Parse(args)
	if *index == "" {
		fatal(fmt.Errorf("-index is required"))
	}
	idx := load(*index)
	lrs, occ := idx.LongestRepeatedSubstring()
	fmt.Printf("string length: %d symbols (terminator included)\n", idx.Len())
	fmt.Printf("alphabet: %s (%d symbols)\n", idx.Alphabet().Name(), idx.Alphabet().Size())
	fmt.Printf("documents: %d\n", idx.NumDocs())
	show := lrs
	if len(show) > 60 {
		show = show[:60]
	}
	fmt.Printf("longest repeated substring: %d symbols (%q...), %d occurrences\n", len(lrs), show, len(occ))
}

func load(path string) *era.Index {
	idx, err := era.OpenIndex(path)
	if err != nil {
		fatal(err)
	}
	return idx
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "era:", err)
	os.Exit(1)
}
