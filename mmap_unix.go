//go:build linux || darwin

package era

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only view of an index file. On Linux and Darwin it is a
// real mmap: opening costs O(1) regardless of file size, pages fault in on
// first touch, and every process serving the same file shares one page-cache
// copy. Close unmaps; the caller owns the lifecycle (see Index.Close — an
// engine must not unmap while queries may still be reading).
type mapping struct {
	b      []byte
	mapped bool
}

// openMapping maps path read-only. The suffix tree descent touches nodes in
// an essentially random order, so the mapping is advised MADV_RANDOM up
// front; the sequential sections (the string, the leaf blocks) are still
// read-ahead-friendly once resident.
func openMapping(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("era: %s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("era: %s is too large to map", path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("era: mmap %s: %w", path, err)
	}
	// Advisory only — failure (e.g. an exotic filesystem) costs nothing.
	_ = syscall.Madvise(b, syscall.MADV_RANDOM)
	return &mapping{b: b, mapped: true}, nil
}

func (m *mapping) bytes() []byte { return m.b }

// size returns the mapped (or loaded) byte count.
func (m *mapping) size() int64 { return int64(len(m.b)) }

// Close releases the mapping. Idempotent. After Close every view handed out
// from bytes() is invalid; callers must ensure no concurrent readers remain.
func (m *mapping) Close() error {
	if m == nil || m.b == nil {
		return nil
	}
	b := m.b
	m.b = nil
	if !m.mapped {
		return nil
	}
	return syscall.Munmap(b)
}
