package cluster

import (
	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
)

func testFile(t *testing.T) *seq.File {
	t.Helper()
	disk := diskio.NewDisk(sim.DefaultModel())
	data := make([]byte, 100001)
	for i := 0; i < 100000; i++ {
		data[i] = "ACGT"[i%4]
	}
	data[100000] = alphabet.Terminator
	f, err := seq.Publish(disk, "s", alphabet.DNA, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewBroadcast(t *testing.T) {
	f := testFile(t)
	cl, err := New(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 4 {
		t.Fatalf("Size = %d", cl.Size())
	}
	if cl.TransferTime() <= 0 {
		t.Error("multi-node cluster should pay the broadcast")
	}
	// Node 0 is the master's own copy.
	if cl.Node(0) != f {
		t.Error("node 0 should reuse the master file")
	}
	// Every node sees the same content on its own disk.
	for i := 0; i < 4; i++ {
		n := cl.Node(i)
		if n.Len() != f.Len() {
			t.Errorf("node %d: length %d", i, n.Len())
		}
		v, err := n.View()
		if err != nil {
			t.Fatal(err)
		}
		if v.At(12345) != 'C' {
			t.Errorf("node %d: content mismatch", i)
		}
		if i > 0 && n.Disk() == f.Disk() {
			t.Errorf("node %d shares the master's disk", i)
		}
	}
}

func TestSingleNodeFree(t *testing.T) {
	f := testFile(t)
	cl, err := New(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.TransferTime() != 0 {
		t.Error("single node should not pay a broadcast")
	}
}

func TestNewRejectsZeroNodes(t *testing.T) {
	if _, err := New(testFile(t), 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

// TestIndependentClocks verifies nodes do not contend: parallel reads on
// different nodes complete at the same virtual time.
func TestIndependentClocks(t *testing.T) {
	f := testFile(t)
	cl, err := New(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	var times []int64
	for i := 1; i < 3; i++ {
		clock := new(sim.Clock)
		sc, err := cl.Node(i).NewScanner(clock, seq.ScannerConfig{BufSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		sc.Reset()
		buf := make([]byte, 4096)
		for off := 0; off < cl.Node(i).Len(); off += 4096 {
			want := 4096
			if off+want > cl.Node(i).Len() {
				want = cl.Node(i).Len() - off
			}
			if _, err := sc.Fetch(buf[:want], off); err != nil {
				t.Fatal(err)
			}
		}
		times = append(times, int64(clock.Now()))
	}
	if times[0] != times[1] {
		t.Errorf("independent nodes diverge: %v", times)
	}
}
